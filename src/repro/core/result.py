"""Result and statistics containers shared by every enumeration algorithm.

The paper's evaluation reports, per query, far more than the set of paths:
query time, preprocessing vs. enumeration breakdown, throughput, response
time (time to the first 1 000 results), number of edges accessed, number of
invalid partial results, and peak memory of the materialised partial
results.  :class:`EnumerationStats` collects all of those counters so the
benchmark harness never needs external profiling, and :class:`QueryResult`
bundles the stats with the (optional) list of discovered paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["EnumerationStats", "QueryResult", "Phase"]

Path = Tuple[int, ...]


class Phase:
    """Canonical names of the timing phases reported by the paper."""

    BFS = "bfs"
    INDEX = "index_construction"
    PRELIMINARY = "preliminary_estimation"
    OPTIMIZATION = "join_order_optimization"
    ENUMERATION = "enumeration"
    JOIN = "join"
    TOTAL = "total"

    ALL = (BFS, INDEX, PRELIMINARY, OPTIMIZATION, ENUMERATION, JOIN, TOTAL)


@dataclass
class EnumerationStats:
    """Counters and timings gathered while evaluating one query."""

    #: Number of directed edges touched by the enumeration loops (Figure 6).
    edges_accessed: int = 0
    #: Partial results that do not appear in any final path (Figure 6).
    invalid_partial_results: int = 0
    #: Total partial results generated (internal nodes of the search tree).
    partial_results_generated: int = 0
    #: Number of results emitted.
    results_emitted: int = 0
    #: Peak number of materialised partial-result tuples (IDX-JOIN, BC-JOIN).
    peak_partial_result_tuples: int = 0
    #: Estimated peak bytes of materialised partial results.
    peak_partial_result_bytes: int = 0
    #: Number of edges stored in the light-weight index (Figure 10).
    index_edges: int = 0
    #: Number of vertices stored in the light-weight index.
    index_vertices: int = 0
    #: Estimated bytes used by the index (Table 7).
    index_bytes: int = 0
    #: Search-space size predicted by the preliminary estimator (Eq. 5).
    preliminary_estimate: Optional[float] = None
    #: Result-count estimate from the full-fledged estimator.
    full_estimate: Optional[float] = None
    #: The plan executed: ``"dfs"`` or ``"join"``.
    plan: Optional[str] = None
    #: The cut position chosen by Algorithm 5 (join plans only).
    cut_position: Optional[int] = None
    #: Whether the index was built from a cached reverse-BFS distance array
    #: (batch execution over target-sharing workloads).
    bfs_cache_hit: bool = False
    #: Whether the cooperative deadline expired before completion.
    timed_out: bool = False
    #: Whether enumeration stopped early because of a result limit.
    truncated: bool = False
    #: Wall-clock seconds per phase (:class:`Phase` names).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        """Pickle as a positional tuple instead of a per-instance dict.

        Batch results cross a process boundary once per shard in the
        process-parallel executor; dropping the repeated field-name strings
        shrinks that traffic severalfold without changing equality.
        """
        return tuple(getattr(self, f.name) for f in fields(self))

    def __setstate__(self, state) -> None:
        for f, value in zip(fields(self), state):
            setattr(self, f.name, value)

    # ------------------------------------------------------------------ #
    # phase helpers
    # ------------------------------------------------------------------ #
    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named timing phase."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def phase(self, name: str) -> float:
        """Seconds spent in phase ``name`` (0.0 when the phase never ran)."""
        return self.phase_seconds.get(name, 0.0)

    @property
    def total_seconds(self) -> float:
        """Total query time in seconds."""
        return self.phase_seconds.get(Phase.TOTAL, 0.0)

    @property
    def preprocessing_seconds(self) -> float:
        """Preprocessing time as reported in Figure 7.

        For index-based algorithms this is the index-construction phase
        (which already includes its BFS sub-phase); baselines that only run
        a BFS report that instead.
        """
        index_seconds = self.phase(Phase.INDEX)
        return index_seconds if index_seconds > 0.0 else self.phase(Phase.BFS)

    @property
    def enumeration_seconds(self) -> float:
        """Enumeration time (DFS or join), as reported in Figure 7."""
        return self.phase(Phase.ENUMERATION) + self.phase(Phase.JOIN)

    def merge(self, other: "EnumerationStats") -> None:
        """Accumulate the counters of ``other`` into this object (in place)."""
        self.edges_accessed += other.edges_accessed
        self.invalid_partial_results += other.invalid_partial_results
        self.partial_results_generated += other.partial_results_generated
        self.results_emitted += other.results_emitted
        self.peak_partial_result_tuples = max(
            self.peak_partial_result_tuples, other.peak_partial_result_tuples
        )
        self.peak_partial_result_bytes = max(
            self.peak_partial_result_bytes, other.peak_partial_result_bytes
        )
        self.index_edges = max(self.index_edges, other.index_edges)
        self.index_vertices = max(self.index_vertices, other.index_vertices)
        self.index_bytes = max(self.index_bytes, other.index_bytes)
        self.timed_out = self.timed_out or other.timed_out
        self.truncated = self.truncated or other.truncated
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)


@dataclass
class QueryResult:
    """The outcome of evaluating a single HcPE query."""

    #: The query that was evaluated (kept as plain ints to avoid import cycles).
    source: int
    target: int
    k: int
    #: Name of the algorithm that produced the result.
    algorithm: str
    #: Number of paths found (always populated, even when paths are not stored).
    count: int
    #: The discovered paths when path storage was enabled, otherwise ``None``.
    paths: Optional[List[Path]]
    #: Per-query statistics.
    stats: EnumerationStats
    #: Seconds from query start until the first ``response_k`` results were
    #: found (the paper's response time); ``None`` when fewer results exist.
    response_seconds: Optional[float] = None
    #: The number of results the response time refers to.
    response_k: int = 1000

    def __getstate__(self):
        """Tuple pickling, mirroring :meth:`EnumerationStats.__getstate__`."""
        return tuple(getattr(self, f.name) for f in fields(self))

    def __setstate__(self, state) -> None:
        for f, value in zip(fields(self), state):
            setattr(self, f.name, value)

    @property
    def query_seconds(self) -> float:
        """Total query time in seconds."""
        return self.stats.total_seconds

    @property
    def query_millis(self) -> float:
        """Total query time in milliseconds, the unit used by the paper."""
        return self.stats.total_seconds * 1e3

    @property
    def throughput(self) -> float:
        """Results found per second (the paper's throughput metric).

        Timed-out queries still report throughput based on the results found
        before the deadline, mirroring Section 7.1.
        """
        seconds = self.stats.total_seconds
        if seconds <= 0.0:
            return float(self.count)
        return self.count / seconds

    @property
    def completed(self) -> bool:
        """``True`` when the query ran to completion (no timeout, no truncation)."""
        return not self.stats.timed_out and not self.stats.truncated

    def path_lengths(self) -> List[int]:
        """Lengths (edge counts) of the stored paths."""
        if self.paths is None:
            return []
        return [len(p) - 1 for p in self.paths]

    def paths_as_external(self, graph) -> List[Tuple[object, ...]]:
        """Translate stored paths back to external vertex ids."""
        if self.paths is None:
            return []
        return [graph.translate_path(p) for p in self.paths]

    def summary(self) -> Dict[str, object]:
        """Flat dict used by the benchmark reporting layer."""
        return {
            "algorithm": self.algorithm,
            "source": self.source,
            "target": self.target,
            "k": self.k,
            "count": self.count,
            "query_ms": self.query_millis,
            "throughput": self.throughput,
            "response_ms": None if self.response_seconds is None else self.response_seconds * 1e3,
            "timed_out": self.stats.timed_out,
            "plan": self.stats.plan,
        }


def paths_are_valid(paths: Sequence[Path], source: int, target: int, k: int) -> bool:
    """Check the HcPE invariants on a set of paths (used by tests and examples).

    Every path must start at ``source``, end at ``target``, contain no
    duplicate vertices and have at most ``k`` edges; the collection must not
    contain duplicates.
    """
    seen = set()
    for path in paths:
        if len(path) < 2 or path[0] != source or path[-1] != target:
            return False
        if len(path) - 1 > k:
            return False
        if len(set(path)) != len(path):
            return False
        if path in seen:
            return False
        seen.add(path)
    return True
