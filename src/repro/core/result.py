"""Result and statistics containers shared by every enumeration algorithm.

The paper's evaluation reports, per query, far more than the set of paths:
query time, preprocessing vs. enumeration breakdown, throughput, response
time (time to the first 1 000 results), number of edges accessed, number of
invalid partial results, and peak memory of the materialised partial
results.  :class:`EnumerationStats` collects all of those counters so the
benchmark harness never needs external profiling, and :class:`QueryResult`
bundles the stats with the (optional) list of discovered paths.

Paths come in two physical representations.  The recursive engines emit one
Python tuple per path; the iterative kernels (:mod:`repro.core.kernels`)
emit whole blocks into a :class:`PathBuffer` — two flat int64 columns
(``paths_data`` holding every vertex of every path concatenated, and
``paths_indptr`` holding the path boundaries, CSR style).  A
:class:`QueryResult` can be backed by either: ``result.paths`` always reads
as the familiar list of tuples (materialised lazily from the buffer), while
``result.path_buffer`` exposes the columnar form for consumers that can use
it directly — compact pickling across worker processes and buffer-slice
serialisation in the query server.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["EnumerationStats", "PathBuffer", "QueryResult", "Phase"]

Path = Tuple[int, ...]

_INT32_MAX = 2**31 - 1


class PathBuffer:
    """Columnar storage for a sequence of paths.

    Layout mirrors CSR: ``data`` is every vertex of every path, back to
    back; ``indptr`` has one entry per path boundary (``indptr[0] == 0``),
    so path ``i`` is ``data[indptr[i] : indptr[i + 1]]``.  While being
    filled the columns are plain Python int lists (cheap appends from the
    enumeration kernels); :meth:`arrays` seals them into int64 numpy arrays,
    which is also the pickled wire form — two primitive buffers instead of
    one tuple object per path.

    The vectorised native engine grows a buffer from whole numpy blocks
    instead (:meth:`extend_array_block`): segments accumulate in a side list
    and are concatenated into the sealed columns the first time anything
    reads the buffer, so appends stay O(block) and no vertex ever round-trips
    through a Python int.
    """

    __slots__ = ("_data", "_indptr", "_segments")

    def __init__(
        self,
        data: Optional[Union[List[int], np.ndarray]] = None,
        indptr: Optional[Union[List[int], np.ndarray]] = None,
    ) -> None:
        if (data is None) != (indptr is None):
            raise ValueError("data and indptr must be given together")
        self._data = [] if data is None else data
        self._indptr = [0] if indptr is None else indptr
        #: Pending numpy blocks from :meth:`extend_array_block`, merged into
        #: the main columns lazily: ``[data_arrays, indptr_arrays, vertices,
        #: paths]`` or ``None`` when nothing is pending.
        self._segments = None
        if len(self._indptr) == 0:
            raise ValueError("indptr must start with 0")

    # -- construction --------------------------------------------------- #
    @classmethod
    def from_paths(cls, paths: Sequence[Sequence[int]]) -> "PathBuffer":
        """Build a buffer from an iterable of paths."""
        buffer = cls()
        for path in paths:
            buffer.append_path(path)
        return buffer

    def append_path(self, path: Sequence[int]) -> None:
        """Append one path (slow per-path entry point)."""
        self._unseal()
        self._data.extend(int(v) for v in path)
        self._indptr.append(len(self._data))

    def extend_block(
        self, data: Sequence[int], bounds: Sequence[int], take: Optional[int] = None
    ) -> None:
        """Append a block of paths stored columnar.

        ``data`` holds the block's vertices concatenated and ``bounds`` the
        *end* offset of each path within the block (no leading zero).
        ``take`` keeps only the first that many paths — the result-limit
        truncation path of :meth:`ResultCollector.emit_block`.
        """
        self._unseal()
        count = len(bounds) if take is None else min(take, len(bounds))
        if count <= 0:
            return
        stop = bounds[count - 1]
        base = len(self._data)
        if stop == len(data):
            self._data.extend(data)
        else:
            self._data.extend(data[:stop])
        indptr = self._indptr
        for i in range(count):
            indptr.append(base + bounds[i])

    def extend_array_block(self, data, bounds, take: Optional[int] = None) -> None:
        """Append a block of paths given as numpy int64 arrays.

        Same ``(data, bounds)`` contract as :meth:`extend_block`, but the
        block is kept as a pending array segment (O(1) bookkeeping, no
        per-vertex conversion); segments merge into the sealed columns the
        first time the buffer is read.
        """
        count = len(bounds) if take is None else min(take, len(bounds))
        if count <= 0:
            return
        data = np.asarray(data, dtype=np.int64)
        bounds = np.asarray(bounds, dtype=np.int64)
        if count != len(bounds):
            bounds = bounds[:count]
        stop = int(bounds[-1])
        if stop != len(data):
            data = data[:stop]
        if self._segments is None:
            self._segments = [[], [], 0, 0]
        segments = self._segments
        base = int(self._indptr[-1]) + segments[2]
        segments[0].append(data)
        segments[1].append(bounds + base if base else bounds)
        segments[2] += stop
        segments[3] += count

    def _consolidate(self) -> None:
        """Merge pending array segments into the sealed columns."""
        if self._segments is None:
            return
        seg_data, seg_indptr, _, _ = self._segments
        self._segments = None
        if isinstance(self._data, list):
            head_data = np.asarray(self._data, dtype=np.int64)
            head_indptr = np.asarray(self._indptr, dtype=np.int64)
        else:
            head_data = self._data.astype(np.int64, copy=False)
            head_indptr = self._indptr.astype(np.int64, copy=False)
        # Segment indptr entries are already absolute end offsets, so the
        # concatenation below is a valid indptr (head keeps the leading 0).
        self._data = np.concatenate([head_data] + seg_data)
        self._indptr = np.concatenate([head_indptr] + seg_indptr)

    def _unseal(self) -> None:
        """Return the columns to list mode so they can grow again."""
        self._consolidate()
        if not isinstance(self._data, list):
            self._data = self._data.tolist()
            self._indptr = self._indptr.tolist()

    # -- access --------------------------------------------------------- #
    def __len__(self) -> int:
        pending = self._segments[3] if self._segments is not None else 0
        return len(self._indptr) - 1 + pending

    @property
    def total_vertices(self) -> int:
        """Total number of vertex slots across all stored paths."""
        pending = self._segments[2] if self._segments is not None else 0
        return int(self._indptr[-1]) + pending

    def path(self, i: int) -> Path:
        """The ``i``-th stored path as a tuple."""
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"path index {i} out of range")
        self._consolidate()
        start, stop = int(self._indptr[i]), int(self._indptr[i + 1])
        chunk = self._data[start:stop]
        if not isinstance(chunk, list):
            chunk = chunk.tolist()
        return tuple(chunk)

    def __getitem__(self, i: int) -> Path:
        return self.path(i)

    def __iter__(self) -> Iterator[Path]:
        for i in range(len(self)):
            yield self.path(i)

    def to_paths(self) -> List[Path]:
        """Materialise the buffer as the classic list of path tuples."""
        self._consolidate()
        data = self._data if isinstance(self._data, list) else self._data.tolist()
        indptr = self._indptr if isinstance(self._indptr, list) else self._indptr.tolist()
        return [
            tuple(data[indptr[i] : indptr[i + 1]]) for i in range(len(indptr) - 1)
        ]

    def to_lists(self) -> List[List[int]]:
        """Paths as plain lists — the JSON wire shape, no tuple detour."""
        self._consolidate()
        data = self._data if isinstance(self._data, list) else self._data.tolist()
        indptr = self._indptr if isinstance(self._indptr, list) else self._indptr.tolist()
        return [data[indptr[i] : indptr[i + 1]] for i in range(len(indptr) - 1)]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Seal and return the columns as ``(paths_data, paths_indptr)`` int64
        arrays — the columnar wire format."""
        self._consolidate()
        if isinstance(self._data, list):
            self._data = np.asarray(self._data, dtype=np.int64)
            self._indptr = np.asarray(self._indptr, dtype=np.int64)
        elif self._data.dtype != np.int64:
            # Unpickled buffers may carry the downcast wire dtype.
            self._data = self._data.astype(np.int64)
            self._indptr = self._indptr.astype(np.int64)
        return self._data, self._indptr

    @property
    def nbytes(self) -> int:
        """Approximate footprint of the columns (8 bytes per slot)."""
        return 8 * (len(self) + 1 + self.total_vertices)

    # -- equality / serialisation --------------------------------------- #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathBuffer):
            if len(self) != len(other):
                return False
            return self.to_paths() == other.to_paths()
        if isinstance(other, (list, tuple)):
            return self.to_paths() == [tuple(p) for p in other]
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PathBuffer(paths={len(self)}, vertices={self.total_vertices})"

    def __getstate__(self):
        """Pickle as two sealed primitive arrays (compact IPC form).

        Columns are downcast to int32 when every value fits — for realistic
        vertex-id ranges that halves the wire size, and unpickling is two
        buffer copies instead of one object per path.
        """
        data, indptr = self.arrays()
        if len(data) == 0 or int(data.max()) <= _INT32_MAX:
            data = data.astype(np.int32)
        if int(indptr[-1]) <= _INT32_MAX:
            indptr = indptr.astype(np.int32)
        return data, indptr

    def __setstate__(self, state) -> None:
        self._data, self._indptr = state
        self._segments = None


class Phase:
    """Canonical names of the timing phases reported by the paper."""

    BFS = "bfs"
    INDEX = "index_construction"
    PRELIMINARY = "preliminary_estimation"
    OPTIMIZATION = "join_order_optimization"
    ENUMERATION = "enumeration"
    JOIN = "join"
    TOTAL = "total"

    ALL = (BFS, INDEX, PRELIMINARY, OPTIMIZATION, ENUMERATION, JOIN, TOTAL)


@dataclass
class EnumerationStats:
    """Counters and timings gathered while evaluating one query."""

    #: Number of directed edges touched by the enumeration loops (Figure 6).
    edges_accessed: int = 0
    #: Partial results that do not appear in any final path (Figure 6).
    invalid_partial_results: int = 0
    #: Total partial results generated (internal nodes of the search tree).
    partial_results_generated: int = 0
    #: Number of results emitted.
    results_emitted: int = 0
    #: Peak number of materialised partial-result tuples (IDX-JOIN, BC-JOIN).
    peak_partial_result_tuples: int = 0
    #: Estimated peak bytes of materialised partial results.
    peak_partial_result_bytes: int = 0
    #: Number of edges stored in the light-weight index (Figure 10).
    index_edges: int = 0
    #: Number of vertices stored in the light-weight index.
    index_vertices: int = 0
    #: Estimated bytes used by the index (Table 7).
    index_bytes: int = 0
    #: Search-space size predicted by the preliminary estimator (Eq. 5).
    preliminary_estimate: Optional[float] = None
    #: Result-count estimate from the full-fledged estimator.
    full_estimate: Optional[float] = None
    #: The plan executed: ``"dfs"`` or ``"join"``.
    plan: Optional[str] = None
    #: The cut position chosen by Algorithm 5 (join plans only).
    cut_position: Optional[int] = None
    #: Whether the index was built from a cached reverse-BFS distance array
    #: (batch execution over target-sharing workloads).
    bfs_cache_hit: bool = False
    #: Whether the cooperative deadline expired before completion.
    timed_out: bool = False
    #: Whether enumeration stopped early because of a result limit.
    truncated: bool = False
    #: Wall-clock seconds per phase (:class:`Phase` names).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        """Pickle as a positional tuple instead of a per-instance dict.

        Batch results cross a process boundary once per shard in the
        process-parallel executor; dropping the repeated field-name strings
        shrinks that traffic severalfold without changing equality.
        """
        return tuple(getattr(self, f.name) for f in fields(self))

    def __setstate__(self, state) -> None:
        for f, value in zip(fields(self), state):
            setattr(self, f.name, value)

    # ------------------------------------------------------------------ #
    # phase helpers
    # ------------------------------------------------------------------ #
    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named timing phase."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def phase(self, name: str) -> float:
        """Seconds spent in phase ``name`` (0.0 when the phase never ran)."""
        return self.phase_seconds.get(name, 0.0)

    @property
    def total_seconds(self) -> float:
        """Total query time in seconds."""
        return self.phase_seconds.get(Phase.TOTAL, 0.0)

    @property
    def preprocessing_seconds(self) -> float:
        """Preprocessing time as reported in Figure 7.

        For index-based algorithms this is the index-construction phase
        (which already includes its BFS sub-phase); baselines that only run
        a BFS report that instead.
        """
        index_seconds = self.phase(Phase.INDEX)
        return index_seconds if index_seconds > 0.0 else self.phase(Phase.BFS)

    @property
    def enumeration_seconds(self) -> float:
        """Enumeration time (DFS or join), as reported in Figure 7."""
        return self.phase(Phase.ENUMERATION) + self.phase(Phase.JOIN)

    def merge(self, other: "EnumerationStats") -> None:
        """Accumulate the counters of ``other`` into this object (in place)."""
        self.edges_accessed += other.edges_accessed
        self.invalid_partial_results += other.invalid_partial_results
        self.partial_results_generated += other.partial_results_generated
        self.results_emitted += other.results_emitted
        self.peak_partial_result_tuples = max(
            self.peak_partial_result_tuples, other.peak_partial_result_tuples
        )
        self.peak_partial_result_bytes = max(
            self.peak_partial_result_bytes, other.peak_partial_result_bytes
        )
        self.index_edges = max(self.index_edges, other.index_edges)
        self.index_vertices = max(self.index_vertices, other.index_vertices)
        self.index_bytes = max(self.index_bytes, other.index_bytes)
        self.timed_out = self.timed_out or other.timed_out
        self.truncated = self.truncated or other.truncated
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)


class QueryResult:
    """The outcome of evaluating a single HcPE query.

    ``paths`` accepts either the classic list of tuples or a
    :class:`PathBuffer`; with a buffer, :attr:`paths` materialises the tuple
    list lazily on first access while :attr:`path_buffer` keeps the columnar
    form available for compact pickling and wire serialisation.
    """

    __slots__ = (
        "source",
        "target",
        "k",
        "algorithm",
        "count",
        "stats",
        "response_seconds",
        "response_k",
        "_paths",
        "_path_buffer",
    )

    def __init__(
        self,
        source: int,
        target: int,
        k: int,
        algorithm: str,
        count: int,
        paths: Optional[Union[List[Path], PathBuffer]],
        stats: EnumerationStats,
        response_seconds: Optional[float] = None,
        response_k: int = 1000,
    ) -> None:
        #: The query that was evaluated (kept as plain ints to avoid import cycles).
        self.source = source
        self.target = target
        self.k = k
        #: Name of the algorithm that produced the result.
        self.algorithm = algorithm
        #: Number of paths found (always populated, even when paths are not stored).
        self.count = count
        #: Per-query statistics.
        self.stats = stats
        #: Seconds from query start until the first ``response_k`` results were
        #: found (the paper's response time); ``None`` when fewer results exist.
        self.response_seconds = response_seconds
        #: The number of results the response time refers to.
        self.response_k = response_k
        if isinstance(paths, PathBuffer):
            self._paths: Optional[List[Path]] = None
            self._path_buffer: Optional[PathBuffer] = paths
        else:
            self._paths = paths
            self._path_buffer = None

    @property
    def paths(self) -> Optional[List[Path]]:
        """The discovered paths when storage was enabled, otherwise ``None``.

        Materialised (and cached) from the columnar buffer on first access.
        """
        if self._paths is None and self._path_buffer is not None:
            self._paths = self._path_buffer.to_paths()
        return self._paths

    @paths.setter
    def paths(self, value: Optional[Union[List[Path], PathBuffer]]) -> None:
        if isinstance(value, PathBuffer):
            self._paths = None
            self._path_buffer = value
        else:
            self._paths = value
            self._path_buffer = None

    @property
    def path_buffer(self) -> Optional[PathBuffer]:
        """The columnar path storage when the result came from a kernel run."""
        return self._path_buffer

    def __getstate__(self):
        """Tuple pickling, mirroring :meth:`EnumerationStats.__getstate__`.

        The columnar buffer (when present) rides instead of the tuple list,
        so worker processes ship two int64 arrays per result rather than one
        Python object per path.
        """
        paths = self._path_buffer if self._path_buffer is not None else self._paths
        return (
            self.source,
            self.target,
            self.k,
            self.algorithm,
            self.count,
            paths,
            self.stats,
            self.response_seconds,
            self.response_k,
        )

    def __setstate__(self, state) -> None:
        (
            self.source,
            self.target,
            self.k,
            self.algorithm,
            self.count,
            paths,
            self.stats,
            self.response_seconds,
            self.response_k,
        ) = state
        if isinstance(paths, PathBuffer):
            self._paths = None
            self._path_buffer = paths
        else:
            self._paths = paths
            self._path_buffer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryResult(algorithm={self.algorithm!r}, "
            f"q=({self.source}, {self.target}, {self.k}), count={self.count})"
        )

    @property
    def query_seconds(self) -> float:
        """Total query time in seconds."""
        return self.stats.total_seconds

    @property
    def query_millis(self) -> float:
        """Total query time in milliseconds, the unit used by the paper."""
        return self.stats.total_seconds * 1e3

    @property
    def throughput(self) -> float:
        """Results found per second (the paper's throughput metric).

        Timed-out queries still report throughput based on the results found
        before the deadline, mirroring Section 7.1.
        """
        seconds = self.stats.total_seconds
        if seconds <= 0.0:
            return float(self.count)
        return self.count / seconds

    @property
    def completed(self) -> bool:
        """``True`` when the query ran to completion (no timeout, no truncation)."""
        return not self.stats.timed_out and not self.stats.truncated

    def path_lengths(self) -> List[int]:
        """Lengths (edge counts) of the stored paths."""
        if self.paths is None:
            return []
        return [len(p) - 1 for p in self.paths]

    def paths_as_external(self, graph) -> List[Tuple[object, ...]]:
        """Translate stored paths back to external vertex ids."""
        if self.paths is None:
            return []
        return [graph.translate_path(p) for p in self.paths]

    def summary(self) -> Dict[str, object]:
        """Flat dict used by the benchmark reporting layer."""
        return {
            "algorithm": self.algorithm,
            "source": self.source,
            "target": self.target,
            "k": self.k,
            "count": self.count,
            "query_ms": self.query_millis,
            "throughput": self.throughput,
            "response_ms": None if self.response_seconds is None else self.response_seconds * 1e3,
            "timed_out": self.stats.timed_out,
            "plan": self.stats.plan,
        }


def paths_are_valid(paths: Sequence[Path], source: int, target: int, k: int) -> bool:
    """Check the HcPE invariants on a set of paths (used by tests and examples).

    Every path must start at ``source``, end at ``target``, contain no
    duplicate vertices and have at most ``k`` edges; the collection must not
    contain duplicates.
    """
    seen = set()
    for path in paths:
        if len(path) < 2 or path[0] != source or path[-1] != target:
            return False
        if len(path) - 1 > k:
            return False
        if len(set(path)) != len(path):
            return False
        if path in seen:
            return False
        seen.add(path)
    return True
