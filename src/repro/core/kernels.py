"""Array-native enumeration kernels: iterative DFS/join on flat CSR buffers.

The recursive engines (:mod:`repro.core.dfs`, :mod:`repro.core.join`) stay
close to the paper's pseudocode — one interpreter frame, one list slice and
one deadline poll per expanded vertex, plus a fresh Python tuple per emitted
path.  These kernels are the production-speed reimplementation of the same
algorithms:

* the recursion becomes an explicit stack of ``(row, cursor, end, found)``
  int frames over preallocated lists — no interpreter frames, no closure
  cells, no per-step allocation;
* candidate ranges are read straight off the index's ``indptr`` / ``offsets``
  arrays (:meth:`~repro.core.index.LightWeightIndex.kernel_csr`) — no
  presliced per-row list mirrors and no slice object per search-tree node;
* the ``on_rows`` hash set becomes an ``on_path`` byte mask indexed by row;
* deadline and limit checks are amortised — the clock is polled once per
  :data:`KERNEL_CHECK_TICKS` expansions instead of once per call;
* paths are emitted in bulk: vertices accumulate in one flat list with an
  end-offset column and reach the collector as whole blocks
  (:meth:`~repro.core.listener.ResultCollector.emit_block`), which stores
  them columnar in a :class:`~repro.core.result.PathBuffer` — no per-path
  tuple exists anywhere on the fast path.

The kernels emit exactly the same paths in exactly the same order as the
recursive engines and charge the same statistics counters (edges accessed,
partial results, invalid partials) at the same points of the search, so a
kernel run is byte-identical to a recursive run — the equivalence suite in
``tests/core/test_kernels.py`` asserts this over randomised graphs, with
and without mid-run interruption.

The constraint extensions of Appendix E (accumulative values, automaton
states) carry per-level state objects that the flat int frames cannot hold;
constrained queries keep the recursive engines, and plan execution falls
back automatically (:class:`repro.core.engine._IndexedAlgorithm`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector
from repro.core.result import EnumerationStats
from repro.errors import EnumerationTimeout

__all__ = [
    "KERNEL_FLUSH_PATHS",
    "KERNEL_CHECK_TICKS",
    "run_dfs_kernel",
    "run_join_kernel",
    "run_subquery_kernel",
]

#: Paths buffered before a block is flushed to the collector.  Large enough
#: that the per-flush bookkeeping amortises to nothing, small enough that a
#: streaming consumer never waits long for the first block.
KERNEL_FLUSH_PATHS = 2048

#: Candidate expansions between deadline polls.  The recursive engines poll
#: per search-tree node (with the clock read amortised inside ``Deadline``);
#: the kernels make even the countdown bookkeeping periodic.
KERNEL_CHECK_TICKS = 1024


def _flush_threshold(collector: ResultCollector) -> int:
    """How many paths the kernel may buffer before the next flush.

    Bounded by the collector's result limit and pending response-time probe
    so both stay accurate to the path, not to the block.
    """
    cap = collector.remaining_before_flush()
    return KERNEL_FLUSH_PATHS if cap is None else min(KERNEL_FLUSH_PATHS, cap)


def _flush_block(collector: ResultCollector, data: List[int], bounds: List[int]):
    """Emit the buffered block; returns a fresh ``(data, bounds, append,
    flush_at)`` quadruple for the kernel to rebind its hot-loop locals.

    Fires at most once per :data:`KERNEL_FLUSH_PATHS` emissions, so the
    call overhead never shows on the per-path profile.
    """
    collector.emit_block(data, bounds)
    data = []
    bounds = []
    return data, bounds, bounds.append, _flush_threshold(collector)


def run_dfs_kernel(
    index: LightWeightIndex,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> int:
    """Iterative IDX-DFS (Algorithm 4) over the index's flat CSR buffers.

    Byte-identical to :func:`repro.core.dfs.run_idx_dfs` without a
    constraint: same paths, same order, same statistics counters.  Returns
    the number of results emitted.
    """
    stats = stats if stats is not None else EnumerationStats()
    query = index.query
    s, t, k = query.source, query.target, query.k
    if index.is_empty:
        return 0

    vertex_of, row_of, nbr, indptr, off = index.kernel_csr()
    stride = k + 1
    t_row = int(row_of[t])
    s_row = int(row_of[s])

    on_path = bytearray(len(vertex_of))
    on_path[s_row] = 1
    path = [s]

    # Explicit stack of spilled parent frames; the ACTIVE frame lives in the
    # locals ``row`` / ``cur`` / ``end`` / ``found`` so the per-candidate
    # loop touches no stack slot at all.  Only frames with budget >= 2 are
    # ever pushed: a budget-1 frame's children are all leaves (a budget-0
    # frame's sole candidate is t, because a non-t candidate at budget 1 is
    # at distance exactly 1 from t and its edge to t survives the index
    # filter), so budget-1 subtrees are scanned inline over one C-level
    # slice of the neighbour array — the two hottest levels of the search
    # tree cost a handful of interpreter ops per path.
    depth_cap = k + 1
    stack_row = [0] * depth_cap
    stack_cur = [0] * depth_cap
    stack_end = [0] * depth_cap
    stack_found = [0] * depth_cap

    data: List[int] = []
    bounds: List[int] = []
    bounds_append = bounds.append
    flush_at = _flush_threshold(collector)

    edges = 0
    partial = 0
    invalid = 0
    emitted = 0

    check = deadline is not None
    ticks = 0

    try:
        if k == 2:
            # The root itself is a budget-1 frame: one inline scan and done.
            cur = indptr[s_row]
            end = cur + off[s_row * stride + 1]
            edges += end - cur
            for child in nbr[cur:end]:
                if on_path[child]:
                    continue
                partial += 1
                if child == t_row:
                    data += path
                    data.append(t)
                else:
                    edges += 1
                    partial += 1
                    data += path
                    data.append(vertex_of[child])
                    data.append(t)
                bounds_append(len(data))
                emitted += 1
                if len(bounds) >= flush_at:
                    data, bounds, bounds_append, flush_at = _flush_block(
                        collector, data, bounds
                    )
            if check:
                deadline.check_every(end - cur)
            if bounds:
                collector.emit_block(data, bounds)
            stats.results_emitted += emitted
            return emitted

        row = s_row
        cur = indptr[s_row]
        end = cur + off[s_row * stride + (k - 1)]
        edges += end - cur
        found = 0
        depth = 0
        budget_col = k - 2  # offset column of the NEXT depth (k - 1 - (depth + 1))
        while True:
            if cur < end:
                child = nbr[cur]
                cur += 1
                if on_path[child]:
                    continue
                partial += 1
                if check:
                    ticks += 1
                    if ticks >= KERNEL_CHECK_TICKS:
                        deadline.check_every(ticks)
                        ticks = 0
                if child == t_row:
                    data += path
                    data.append(t)
                    bounds_append(len(data))
                    found += 1
                    emitted += 1
                    if len(bounds) >= flush_at:
                        data, bounds, bounds_append, flush_at = _flush_block(
                            collector, data, bounds
                        )
                    continue
                if budget_col == 1:
                    # Inline scan of the whole budget-1 subtree under
                    # ``child``: every grandchild is either t (emit) or a
                    # leaf whose only continuation is t (emit through it).
                    c_cur = indptr[child]
                    c_end = c_cur + off[child * stride + 1]
                    edges += c_end - c_cur
                    if check:
                        ticks += c_end - c_cur
                        if ticks >= KERNEL_CHECK_TICKS:
                            deadline.check_every(ticks)
                            ticks = 0
                    cfound = 0
                    v_child = vertex_of[child]
                    for cc in nbr[c_cur:c_end]:
                        if on_path[cc]:
                            continue
                        partial += 1
                        if cc == t_row:
                            data += path
                            data.append(v_child)
                            data.append(t)
                        else:
                            edges += 1
                            partial += 1
                            data += path
                            data.append(v_child)
                            data.append(vertex_of[cc])
                            data.append(t)
                        bounds_append(len(data))
                        cfound += 1
                        emitted += 1
                        if len(bounds) >= flush_at:
                            data, bounds, bounds_append, flush_at = _flush_block(
                                collector, data, bounds
                            )
                    if cfound == 0:
                        invalid += 1
                    found += cfound
                    continue
                # Push: spill the active frame, make the child active.
                stack_row[depth] = row
                stack_cur[depth] = cur
                stack_end[depth] = end
                stack_found[depth] = found
                depth += 1
                path.append(vertex_of[child])
                on_path[child] = 1
                row = child
                cur = indptr[child]
                end = cur + off[child * stride + budget_col]
                budget_col -= 1
                edges += end - cur
                found = 0
            else:
                # Pop: fold the finished frame into its parent.
                if depth == 0:
                    break
                depth -= 1
                budget_col += 1
                on_path[row] = 0
                path.pop()
                row = stack_row[depth]
                cur = stack_cur[depth]
                end = stack_end[depth]
                if found == 0:
                    invalid += 1
                    found = stack_found[depth]
                else:
                    found += stack_found[depth]
        if bounds:
            collector.emit_block(data, bounds)
    except EnumerationTimeout:
        # The recursive engines hand over each path the moment it is found;
        # the kernel owes the collector whatever it buffered before the
        # deadline fired.
        if bounds:
            collector.emit_block(data, bounds)
        raise
    finally:
        stats.edges_accessed += edges
        stats.partial_results_generated += partial
        stats.invalid_partial_results += invalid
    stats.results_emitted += emitted
    return emitted


def run_subquery_kernel(
    index: LightWeightIndex,
    *,
    start: int,
    offset: int,
    length: int,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> Tuple[List[int], int]:
    """Iterative sub-query evaluation (the Search procedure of Algorithm 6).

    Returns ``(data, width)``: every walk of exactly ``length`` edges from
    ``start``, concatenated into one flat vertex list of fixed ``width ==
    length + 1`` stride, in the same order as
    :func:`repro.core.join.evaluate_subquery`.
    """
    stats = stats if stats is not None else EnumerationStats()
    k = index.k
    vertex_of, row_of, nbr, indptr, off = index.kernel_csr()
    width = length + 1
    start_row = int(row_of[start]) if 0 <= start < len(row_of) else -1
    if start_row < 0:
        # A start outside the index has no stored neighbours; only the
        # zero-length walk survives (matching the recursive semantics).
        return ([start], width) if length == 0 else ([], width)
    if length == 0:
        return [start], width

    stride = k + 1
    walk = [start]
    stack_cur = [0] * length
    stack_end = [0] * length

    data: List[int] = []
    edges = 0
    partial = 0
    check = deadline is not None
    ticks = 0

    # Offset column of the active frame at depth d is k - offset - (d + 1);
    # ``budget_col`` tracks the column of the NEXT depth.
    budget = k - offset - 1
    if budget < 0:
        # Out-of-range sub-chains (offset + length > k) have no candidates.
        cur = end = 0
    else:
        cur = indptr[start_row]
        end = cur + off[start_row * stride + budget]
    edges += end - cur
    depth = 0
    last = length - 1
    second_last = last - 1
    budget_col = budget - 1
    try:
        while True:
            if cur < end:
                child = nbr[cur]
                cur += 1
                partial += 1
                if check:
                    ticks += 1
                    if ticks >= KERNEL_CHECK_TICKS:
                        deadline.check_every(ticks)
                        ticks = 0
                v = vertex_of[child]
                if depth == last:
                    # Full-length walk: record it columnar, do not descend.
                    data += walk
                    data.append(v)
                    continue
                if depth == second_last:
                    # The child's candidates are all full-length walks:
                    # record the whole fan-out over one C-level slice.
                    if budget_col < 0:
                        continue
                    c_cur = indptr[child]
                    c_end = c_cur + off[child * stride + budget_col]
                    edges += c_end - c_cur
                    if c_cur < c_end:
                        prefix = walk + [v]
                        if check:
                            ticks += c_end - c_cur
                            if ticks >= KERNEL_CHECK_TICKS:
                                deadline.check_every(ticks)
                                ticks = 0
                        for cc in nbr[c_cur:c_end]:
                            partial += 1
                            data += prefix
                            data.append(vertex_of[cc])
                    continue
                stack_cur[depth] = cur
                stack_end[depth] = end
                depth += 1
                walk.append(v)
                if budget_col < 0:
                    cur = end = 0
                else:
                    cur = indptr[child]
                    end = cur + off[child * stride + budget_col]
                budget_col -= 1
                edges += end - cur
            else:
                if depth == 0:
                    break
                depth -= 1
                budget_col += 1
                walk.pop()
                cur = stack_cur[depth]
                end = stack_end[depth]
    finally:
        stats.edges_accessed += edges
        stats.partial_results_generated += partial
    return data, width


def run_join_kernel(
    index: LightWeightIndex,
    cut_position: int,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> int:
    """Iterative IDX-JOIN (Algorithm 6) with columnar partial results.

    Byte-identical to :func:`repro.core.join.run_idx_join` without a
    constraint: both sub-queries run through :func:`run_subquery_kernel`
    (fixed-width flat buffers instead of one tuple per walk), the hash join
    keys right walks by index into the flat buffer, and joined paths are
    emitted in blocks.
    """
    stats = stats if stats is not None else EnumerationStats()
    query = index.query
    s, t, k = query.source, query.target, query.k
    if not 1 <= cut_position <= k - 1:
        raise ValueError(f"cut position must lie in [1, {k - 1}], got {cut_position}")
    if index.is_empty:
        return 0
    stats.cut_position = cut_position

    # Left sub-query Q[0:i*]: walks from s with exactly i* edges.
    left_data, lw = run_subquery_kernel(
        index, start=s, offset=0, length=cut_position, deadline=deadline, stats=stats
    )
    left_count = len(left_data) // lw

    # Right sub-query Q[i*:k]: walks from each cut vertex with k - i* edges.
    cut_vertices = sorted(set(left_data[lw - 1 :: lw]))
    right_data: List[int] = []
    for v in cut_vertices:
        segment, _ = run_subquery_kernel(
            index,
            start=v,
            offset=cut_position,
            length=k - cut_position,
            deadline=deadline,
            stats=stats,
        )
        right_data += segment
    rw = k - cut_position + 1
    right_count = len(right_data) // rw

    peak_tuples = left_count + right_count
    stats.peak_partial_result_tuples = max(stats.peak_partial_result_tuples, peak_tuples)
    stats.peak_partial_result_bytes = max(
        stats.peak_partial_result_bytes,
        8 * (left_count * lw + right_count * rw),
    )

    # Hash join on the cut vertex: head vertex -> indices into the flat
    # right buffer.  Per right walk, the pair loop only ever needs the
    # walk's simple-path contribution: the tail (walk minus its head) cut
    # at the first occurrence of t — every right walk ends at t, so the
    # padding boundary always lies in the tail — plus that prefix's vertex
    # set and internal-distinctness flag.  Precomputing all three turns a
    # join pair into one C-level ``isdisjoint`` and two list extends: no
    # per-pair concatenation, scan or set build.
    right_by_head: Dict[int, List[int]] = {}
    tail_prefix: List[List[int]] = []
    tail_set: List[frozenset] = []
    tail_ok: List[bool] = []
    for idx in range(right_count):
        base = idx * rw
        right_by_head.setdefault(right_data[base], []).append(idx)
        tail = right_data[base + 1 : base + rw]
        prefix = tail[: tail.index(t) + 1]
        vertex_set = frozenset(prefix)
        tail_prefix.append(prefix)
        tail_set.append(vertex_set)
        tail_ok.append(len(vertex_set) == len(prefix))

    used = bytearray(right_count)
    used_count = 0
    emitted = 0
    invalid_left = 0
    data: List[int] = []
    bounds: List[int] = []
    bounds_append = bounds.append
    flush_at = _flush_threshold(collector)
    check = deadline is not None

    try:
        for li in range(left_count):
            if check:
                deadline.check_every(1)
            lbase = li * lw
            head = left_data[lbase + lw - 1]
            matches = right_by_head.get(head)
            produced = 0
            if matches is not None:
                lwalk = left_data[lbase : lbase + lw]
                lset = set(lwalk)
                if t in lset:
                    # The padding boundary already lies in the left walk (t
                    # only ever continues to t, so head == t): each match
                    # joins to the same prefix of the left walk.
                    stop = lwalk.index(t) + 1
                    lprefix = lwalk[:stop]
                    if len(set(lprefix)) == stop:
                        for ri in matches:
                            data += lprefix
                            bounds_append(len(data))
                            emitted += 1
                            produced += 1
                            if not used[ri]:
                                used[ri] = 1
                                used_count += 1
                            if len(bounds) >= flush_at:
                                data, bounds, bounds_append, flush_at = _flush_block(
                                    collector, data, bounds
                                )
                elif len(lset) == lw:
                    for ri in matches:
                        if tail_ok[ri] and lset.isdisjoint(tail_set[ri]):
                            data += lwalk
                            data += tail_prefix[ri]
                            bounds_append(len(data))
                            emitted += 1
                            produced += 1
                            if not used[ri]:
                                used[ri] = 1
                                used_count += 1
                            if len(bounds) >= flush_at:
                                data, bounds, bounds_append, flush_at = _flush_block(
                                    collector, data, bounds
                                )
                # A left walk with an internal duplicate (and no t) can
                # never join into a simple path; its matches all fail.
            if produced == 0:
                invalid_left += 1
        if bounds:
            collector.emit_block(data, bounds)
    except EnumerationTimeout:
        if bounds:
            collector.emit_block(data, bounds)
        raise
    finally:
        stats.invalid_partial_results += invalid_left
    stats.invalid_partial_results += right_count - used_count
    stats.results_emitted += emitted
    return emitted
