"""Cardinality estimation and join-order optimization (Section 6).

Two estimators drive PathEnum's optimizer:

* the **preliminary estimator** (Eq. 5) multiplies the average branching
  factors ``gamma_hat_i`` collected during index construction — an O(k²)
  guess of the search-space size used only to decide whether spending time
  on real optimization is worthwhile;
* the **full-fledged estimator** (Eqs. 6-7, Algorithm 5) runs two dynamic
  programs over the index — walk counts from ``s`` (forward) and walk counts
  to ``t`` (backward) — from which the sizes of every sub-chain ``Q[0:i]``
  and ``Q[i:k]`` follow, the best cut position ``i*`` is the argmin of their
  sum, and the costs of the left-deep (DFS) and bushy (join) plans are
  computed with the cost model of Eq. 1.

Both DP passes run on the index's flat CSR mirrors with levels stored as
row-indexed Python lists: the inner accumulation is a list index per edge
(no hash lookups), while the arithmetic stays on Python ints so the walk
counts remain exact even when they exceed 64 bits.  The public
:class:`CardinalityEstimate` still exposes the levels as vertex-keyed dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline

__all__ = [
    "preliminary_estimate",
    "CardinalityEstimate",
    "full_estimate",
    "find_cut_position",
    "dfs_cost",
    "join_cost",
]


def preliminary_estimate(index: LightWeightIndex) -> float:
    """Rough search-space size ``T_hat`` of Eq. 5.

    ``T_hat = sum_{i=1..k} prod_{j=0..i-1} gamma_hat_j`` where
    ``gamma_hat_j`` is the average number of index neighbours within the
    remaining budget for vertices in ``C_j``.  One cumulative product over
    the gamma array the index builder already collected; once a factor is
    zero every later term is zero, so no explicit early exit is needed.
    """
    gamma = index.gamma_array()
    if len(gamma) == 0:
        return 0.0
    return float(np.cumprod(gamma).sum())


@dataclass
class CardinalityEstimate:
    """Output of the full-fledged estimator (Algorithm 5's two DP passes)."""

    #: ``forward[i][v]`` — number of index walks of exactly ``i`` edges from ``s`` to ``v``.
    forward: List[Dict[int, int]] = field(default_factory=list)
    #: ``backward[i][v]`` — number of index walks from ``v`` (at position ``i``) to ``t``.
    backward: List[Dict[int, int]] = field(default_factory=list)
    #: ``prefix_sizes[i] = |Q[0:i]|`` for ``i`` in ``0..k``.
    prefix_sizes: List[int] = field(default_factory=list)
    #: ``suffix_sizes[i] = |Q[i:k]|`` for ``i`` in ``0..k``.
    suffix_sizes: List[int] = field(default_factory=list)
    #: ``|Q|`` — the estimated number of walks from ``s`` to ``t`` (with padding).
    walk_count: int = 0

    @property
    def k(self) -> int:
        """Hop constraint implied by the DP tables."""
        return len(self.prefix_sizes) - 1


def full_estimate(
    index: LightWeightIndex, *, deadline: Optional[Deadline] = None
) -> CardinalityEstimate:
    """Run the forward/backward dynamic programs of Algorithm 5."""
    k = index.k
    s = index.query.source
    num_rows = index.num_index_vertices
    vertex_of, _, row_neighbors, row_offsets = index.flat_adjacency()
    part_indptr = index.partition_indptr().tolist()
    part_rows = index.partition_rows().tolist()

    def as_dict(level_counts: List[int]) -> Dict[int, int]:
        return {
            vertex_of[row]: count
            for row, count in enumerate(level_counts)
            if count
        }

    # Backward pass: c^i_k(v) — number of walks from v at position i to t.
    backward: List[Dict[int, int]] = [dict() for _ in range(k + 1)]
    level: List[int] = [0] * num_rows
    for row in part_rows[part_indptr[k] : part_indptr[k + 1]]:
        level[row] = 1
    backward[k] = as_dict(level)
    for i in range(k - 1, -1, -1):
        if deadline is not None:
            deadline.check()
        nxt = level
        level = [0] * num_rows
        budget = k - i - 1
        for row in part_rows[part_indptr[i] : part_indptr[i + 1]]:
            total = 0
            for next_row in row_neighbors[row][: row_offsets[row][budget]]:
                total += nxt[next_row]
            level[row] = total
        backward[i] = as_dict(level)

    # Forward pass: c^0_i(v) — number of walks of exactly i edges from s to v.
    forward: List[Dict[int, int]] = [dict() for _ in range(k + 1)]
    level = [0] * num_rows
    s_row = int(index.row_of[s]) if index.contains(s) else -1
    if s_row >= 0:
        level[s_row] = 1
    forward[0] = as_dict(level)
    for i in range(1, k + 1):
        if deadline is not None:
            deadline.check()
        previous = level
        level = [0] * num_rows
        budget = k - i
        # Nonzero forward counts at position i-1 only occur inside C_{i-1}
        # (every reached vertex satisfies both distance bounds), so the
        # partition slice bounds the scan exactly like the backward pass.
        for row in part_rows[part_indptr[i - 1] : part_indptr[i]]:
            count = previous[row]
            if not count:
                continue
            for next_row in row_neighbors[row][: row_offsets[row][budget]]:
                level[next_row] += count
        forward[i] = as_dict(level)

    prefix_sizes = [sum(level.values()) for level in forward]
    suffix_sizes = [sum(level.values()) for level in backward]
    walk_count = backward[0].get(s, 0)
    return CardinalityEstimate(
        forward=forward,
        backward=backward,
        prefix_sizes=prefix_sizes,
        suffix_sizes=suffix_sizes,
        walk_count=walk_count,
    )


def find_cut_position(estimate: CardinalityEstimate) -> int:
    """Best cut position ``i*`` (Line 11 of Algorithm 5).

    Minimises ``|Q[0:i]| + |Q[i:k]|`` over the interior positions
    ``1 <= i <= k - 1``; ties break towards the middle of the chain, which
    keeps the two DFS evaluations balanced.
    """
    k = estimate.k
    if k < 2:
        return max(1, k - 1)
    middle = k / 2.0
    best_position = 1
    best_cost: Optional[tuple] = None
    for i in range(1, k):
        cost = estimate.prefix_sizes[i] + estimate.suffix_sizes[i]
        distance_to_middle = abs(i - middle)
        key = (cost, distance_to_middle)
        if best_cost is None or key < best_cost:
            best_cost = key
            best_position = i
    return best_position


def dfs_cost(estimate: CardinalityEstimate) -> float:
    """Cost of the left-deep plan: ``T_DFS = sum_{1<=i<=k} |Q[0:i]|``."""
    return float(sum(estimate.prefix_sizes[1:]))


def join_cost(estimate: CardinalityEstimate, cut_position: int) -> float:
    """Cost of the bushy plan cut at ``cut_position`` (Section 6.3).

    ``T_JOIN = |Q| + sum_{1<=i<=i*} |Q[0:i]| + sum_{i*<=i<=k} |Q[i:k]|``
    following the paper's expression in terms of the DP tables.
    """
    k = estimate.k
    left = sum(estimate.prefix_sizes[1 : cut_position + 1])
    right = sum(estimate.suffix_sizes[cut_position : k + 1])
    return float(estimate.walk_count + left + right)
