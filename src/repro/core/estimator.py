"""Cardinality estimation and join-order optimization (Section 6).

Two estimators drive PathEnum's optimizer:

* the **preliminary estimator** (Eq. 5) multiplies the average branching
  factors ``gamma_hat_i`` collected during index construction — an O(k²)
  guess of the search-space size used only to decide whether spending time
  on real optimization is worthwhile;
* the **full-fledged estimator** (Eqs. 6-7, Algorithm 5) runs two dynamic
  programs over the index — walk counts from ``s`` (forward) and walk counts
  to ``t`` (backward) — from which the sizes of every sub-chain ``Q[0:i]``
  and ``Q[i:k]`` follow, the best cut position ``i*`` is the argmin of their
  sum, and the costs of the left-deep (DFS) and bushy (join) plans are
  computed with the cost model of Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline

__all__ = [
    "preliminary_estimate",
    "CardinalityEstimate",
    "full_estimate",
    "find_cut_position",
    "dfs_cost",
    "join_cost",
]


def preliminary_estimate(index: LightWeightIndex) -> float:
    """Rough search-space size ``T_hat`` of Eq. 5.

    ``T_hat = sum_{i=1..k} prod_{j=0..i-1} gamma_hat_j`` where
    ``gamma_hat_j`` is the average number of index neighbours within the
    remaining budget for vertices in ``C_j``.  Runs in O(k²) time on
    statistics already collected by the index builder.
    """
    k = index.k
    total = 0.0
    product = 1.0
    for i in range(k):
        product *= index.gamma(i)
        total += product
        if product == 0.0:
            break
    return total


@dataclass
class CardinalityEstimate:
    """Output of the full-fledged estimator (Algorithm 5's two DP passes)."""

    #: ``forward[i][v]`` — number of index walks of exactly ``i`` edges from ``s`` to ``v``.
    forward: List[Dict[int, int]] = field(default_factory=list)
    #: ``backward[i][v]`` — number of index walks from ``v`` (at position ``i``) to ``t``.
    backward: List[Dict[int, int]] = field(default_factory=list)
    #: ``prefix_sizes[i] = |Q[0:i]|`` for ``i`` in ``0..k``.
    prefix_sizes: List[int] = field(default_factory=list)
    #: ``suffix_sizes[i] = |Q[i:k]|`` for ``i`` in ``0..k``.
    suffix_sizes: List[int] = field(default_factory=list)
    #: ``|Q|`` — the estimated number of walks from ``s`` to ``t`` (with padding).
    walk_count: int = 0

    @property
    def k(self) -> int:
        """Hop constraint implied by the DP tables."""
        return len(self.prefix_sizes) - 1


def full_estimate(
    index: LightWeightIndex, *, deadline: Optional[Deadline] = None
) -> CardinalityEstimate:
    """Run the forward/backward dynamic programs of Algorithm 5."""
    k = index.k
    s = index.query.source

    # Backward pass: c^i_k(v) — number of walks from v at position i to t.
    backward: List[Dict[int, int]] = [dict() for _ in range(k + 1)]
    for v in index.members(k):
        backward[k][v] = 1
    for i in range(k - 1, -1, -1):
        if deadline is not None:
            deadline.check()
        level: Dict[int, int] = {}
        nxt = backward[i + 1]
        budget = k - i - 1
        for v in index.members(i):
            total = 0
            for v_next in index.neighbors_within(v, budget):
                total += nxt.get(v_next, 0)
            if total:
                level[v] = total
        backward[i] = level

    # Forward pass: c^0_i(v) — number of walks of exactly i edges from s to v.
    forward: List[Dict[int, int]] = [dict() for _ in range(k + 1)]
    forward[0] = {s: 1} if index.contains(s) else {}
    for i in range(1, k + 1):
        if deadline is not None:
            deadline.check()
        level = {}
        budget = k - i
        for u, count in forward[i - 1].items():
            for v_next in index.neighbors_within(u, budget):
                level[v_next] = level.get(v_next, 0) + count
        forward[i] = level

    prefix_sizes = [sum(level.values()) for level in forward]
    suffix_sizes = [sum(level.values()) for level in backward]
    walk_count = backward[0].get(s, 0)
    return CardinalityEstimate(
        forward=forward,
        backward=backward,
        prefix_sizes=prefix_sizes,
        suffix_sizes=suffix_sizes,
        walk_count=walk_count,
    )


def find_cut_position(estimate: CardinalityEstimate) -> int:
    """Best cut position ``i*`` (Line 11 of Algorithm 5).

    Minimises ``|Q[0:i]| + |Q[i:k]|`` over the interior positions
    ``1 <= i <= k - 1``; ties break towards the middle of the chain, which
    keeps the two DFS evaluations balanced.
    """
    k = estimate.k
    if k < 2:
        return max(1, k - 1)
    middle = k / 2.0
    best_position = 1
    best_cost: Optional[float] = None
    for i in range(1, k):
        cost = estimate.prefix_sizes[i] + estimate.suffix_sizes[i]
        distance_to_middle = abs(i - middle)
        key = (cost, distance_to_middle)
        if best_cost is None or key < best_cost:
            best_cost = key
            best_position = i
    return best_position


def dfs_cost(estimate: CardinalityEstimate) -> float:
    """Cost of the left-deep plan: ``T_DFS = sum_{1<=i<=k} |Q[0:i]|``."""
    return float(sum(estimate.prefix_sizes[1:]))


def join_cost(estimate: CardinalityEstimate, cut_position: int) -> float:
    """Cost of the bushy plan cut at ``cut_position`` (Section 6.3).

    ``T_JOIN = |Q| + sum_{1<=i<=i*} |Q[0:i]| + sum_{i*<=i<=k} |Q[i:k]|``
    following the paper's expression in terms of the DP tables.
    """
    k = estimate.k
    left = sum(estimate.prefix_sizes[1 : cut_position + 1])
    right = sum(estimate.suffix_sizes[cut_position : k + 1])
    return float(estimate.walk_count + left + right)
