"""The light-weight, query-dependent index of PathEnum (Algorithm 3).

Given a query ``q(s, t, k)`` the index stores, for every vertex ``v`` that
can possibly appear on a result path (Proposition 4.3):

* ``v.s`` — the length of the shortest walk from ``s`` to ``v`` that does
  not pass through ``t`` as an intermediate vertex;
* ``v.t`` — the length of the shortest walk from ``v`` to ``t`` that does
  not pass through ``s`` as an intermediate vertex;
* the out-neighbours ``v'`` of ``v`` with ``v.s + v'.t + 1 <= k``, sorted by
  ascending ``v'.t`` together with an offset array indexed by distance —
  the Neighbors / Offset layout of Figure 4.

The storage is flat compressed-sparse-row form, mirroring the CSR encoding
:class:`~repro.graph.digraph.DiGraph` itself uses:

* ``_indptr`` / ``_indices`` — int64 arrays; the retained out-neighbours of
  the vertex in row ``r`` are ``_indices[_indptr[r] : _indptr[r + 1]]``,
  sorted by ascending distance to ``t``;
* ``_offsets`` — a single ``(|X|, k + 1)`` int64 matrix; ``_offsets[r, b]``
  is the number of neighbours in row ``r`` within distance ``b`` of ``t``;
* ``_row_of`` — int64 array of length ``|V|`` mapping a vertex id to its row
  (``-1`` outside the index), so no hash lookup is ever needed;
* ``_part_indptr`` / ``_part_members`` — the candidate partitions ``C_i``
  in the same CSR shape.

The two lookup operations of the paper are then O(1) array slices:

* :meth:`LightWeightIndex.members` — ``I(i)``, the candidate set ``C_i`` of
  vertices that may appear at position ``i`` of a result;
* :meth:`LightWeightIndex.neighbors_within` — ``I_t(v, b)``, the neighbours
  of ``v`` whose distance to ``t`` is at most ``b`` (returned as a numpy
  slice backed by the sorted neighbour array).

Construction is vectorised: the per-vertex collect/sort/offset-scan loop of
Algorithm 3 becomes one ragged gather over the graph's CSR arrays, one
``np.lexsort`` and two ``np.bincount`` passes.  The enumeration loops
(:mod:`repro.core.dfs`, :mod:`repro.core.join`, :mod:`repro.core.estimator`)
read the same layout through :meth:`LightWeightIndex.flat_adjacency`, which
mirrors the arrays into plain Python lists once per query so the recursive
inner loops pay neither hash lookups nor numpy scalar boxing.

Following the join model of Section 3.1 the target ``t`` carries a single
self-loop (``H[t] = {t}``) so that join-based enumeration can pad walks
shorter than ``k`` up to full length.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.listener import Deadline
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase
from repro.graph.digraph import DiGraph, ragged_gather
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded

__all__ = ["LightWeightIndex"]

EdgeFilter = Callable[[int, int], bool]

_EMPTY = np.empty(0, dtype=np.int64)


class LightWeightIndex:
    """Query-dependent index over the vertices that can appear on a result."""

    __slots__ = (
        "graph",
        "query",
        "dist_from_s",
        "dist_to_t",
        "_rows",
        "_row_of",
        "_indptr",
        "_indices",
        "_offsets",
        "_part_indptr",
        "_part_members",
        "_part_rows",
        "_gamma",
        "_flat",
        "_kernel",
        "_native",
        "_in_csr",
        "num_index_edges",
        "build_seconds",
        "bfs_seconds",
        "used_cached_distances",
    )

    def __init__(
        self,
        graph: DiGraph,
        query: Query,
        dist_from_s: np.ndarray,
        dist_to_t: np.ndarray,
        rows: np.ndarray,
        row_of: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        offsets: np.ndarray,
        part_indptr: np.ndarray,
        part_members: np.ndarray,
        gamma: np.ndarray,
        build_seconds: float,
        bfs_seconds: float,
        used_cached_distances: bool = False,
    ) -> None:
        self.graph = graph
        self.query = query
        self.dist_from_s = dist_from_s
        self.dist_to_t = dist_to_t
        self._rows = rows
        self._row_of = row_of
        self._indptr = indptr
        self._indices = indices
        self._offsets = offsets
        self._part_indptr = part_indptr
        self._part_members = part_members
        self._part_rows: Optional[np.ndarray] = None
        self._gamma = gamma
        self._flat: Optional[tuple] = None
        self._kernel: Optional[tuple] = None
        self._native: Optional[tuple] = None
        self._in_csr: Optional[tuple] = None
        self.num_index_edges = int(len(indices))
        self.build_seconds = build_seconds
        self.bfs_seconds = bfs_seconds
        self.used_cached_distances = used_cached_distances

    # ------------------------------------------------------------------ #
    # construction (Algorithm 3, vectorised)
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        query: Query,
        *,
        edge_filter: Optional[EdgeFilter] = None,
        deadline: Optional[Deadline] = None,
        stats: Optional[EnumerationStats] = None,
        dist_to_t: Optional[np.ndarray] = None,
        dist_from_s: Optional[np.ndarray] = None,
    ) -> "LightWeightIndex":
        """Build the index for ``query`` on ``graph``.

        ``edge_filter(u, v)`` restricts the graph on the fly (predicate
        constraints, Appendix E).  When ``stats`` is given the BFS and index
        construction phases are recorded in it.

        ``dist_to_t`` injects a precomputed reverse-BFS distance array (as
        produced by :class:`~repro.core.engine.QuerySession`); any sound
        under-approximation of the restricted distances — in particular the
        unrestricted distances to ``t`` — yields a superset index and
        therefore identical result sets, at the cost of slightly weaker
        pruning.  When provided, the reverse BFS is skipped entirely, which
        removes roughly half of the build cost for target-sharing workloads.

        ``dist_from_s`` likewise injects the forward distances.  Unlike the
        reverse array it must equal the restricted forward BFS exactly
        (``no_expand=t``, same edge filter) — the sharded batch executor
        obtains it from a multi-source sweep over every query of a shard,
        which produces the same unique BFS distances level for level.
        """
        query.validate(graph)
        started = time.perf_counter()
        s, t, k = query.source, query.target, query.k

        bfs_started = time.perf_counter()
        if dist_from_s is None:
            dist_from_s = bfs_distances_bounded(
                graph, s, cutoff=k, no_expand=t, edge_filter=edge_filter
            )
        used_cache = dist_to_t is not None
        if dist_to_t is None:
            dist_to_t = bfs_distances_bounded(
                graph, t, cutoff=k, reverse=True, no_expand=s, edge_filter=edge_filter
            )
        bfs_seconds = time.perf_counter() - bfs_started
        if deadline is not None:
            deadline.check()

        ds = dist_from_s
        dt = dist_to_t

        # Partition X: vertices with v.s + v.t <= k (Lines 2-4 of Algorithm 3).
        in_x = (ds != UNREACHABLE) & (dt != UNREACHABLE) & (ds + dt <= k)
        rows = np.flatnonzero(in_x).astype(np.int64)
        num_rows = len(rows)
        row_of = np.full(graph.num_vertices, -1, dtype=np.int64)
        row_of[rows] = np.arange(num_rows, dtype=np.int64)

        # Candidate edges: one ragged gather over the graph CSR restricted to
        # the member sources (t is handled by its padding self-loop below).
        out_indptr, out_indices = graph.out_csr()
        edge_src, edge_dst = ragged_gather(out_indptr, out_indices, rows[rows != t])
        if len(edge_src):
            dt_dst = dt[edge_dst]
            keep = (
                (edge_dst != s)
                & (dt_dst != UNREACHABLE)
                & (ds[edge_src] + dt_dst + 1 <= k)
            )
            edge_src = edge_src[keep]
            edge_dst = edge_dst[keep]
        if edge_filter is not None and len(edge_src):
            kept = np.fromiter(
                (edge_filter(int(u), int(v)) for u, v in zip(edge_src, edge_dst)),
                dtype=bool,
                count=len(edge_src),
            )
            edge_src = edge_src[kept]
            edge_dst = edge_dst[kept]
        if deadline is not None:
            deadline.check()

        # The target keeps a single self-loop so that join padding works
        # (Line 10 of Algorithm 3, property (3) of the join model).  Feeding
        # it through the shared sort keeps every row in one layout.
        if in_x[t]:
            edge_src = np.concatenate([edge_src, np.asarray([t], dtype=np.int64)])
            edge_dst = np.concatenate([edge_dst, np.asarray([t], dtype=np.int64)])

        # Sort rows by (source, neighbour distance to t); the stable lexsort
        # reproduces the paper's tie order (graph adjacency order).
        if len(edge_src):
            order = np.lexsort((dt[edge_dst], edge_src))
            edge_src = edge_src[order]
            edge_dst = edge_dst[order]

        index = cls._assemble(
            graph,
            query,
            dist_from_s,
            dist_to_t,
            rows,
            row_of,
            edge_src,
            edge_dst,
            bfs_seconds=bfs_seconds,
            started=started,
            used_cache=used_cache,
        )
        if stats is not None:
            index.record_stats(stats)
        return index

    @classmethod
    def _assemble(
        cls,
        graph: DiGraph,
        query: Query,
        dist_from_s: np.ndarray,
        dist_to_t: np.ndarray,
        rows: np.ndarray,
        row_of: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        *,
        bfs_seconds: float,
        started: float,
        used_cache: bool,
    ) -> "LightWeightIndex":
        """Assemble an index from presorted candidate edges.

        Shared tail of :meth:`build` and :meth:`build_group`: ``edge_src`` /
        ``edge_dst`` must already be filtered and sorted by
        ``(source, neighbour distance to t)``.
        """
        ds = dist_from_s
        dt = dist_to_t
        k = query.k
        num_rows = len(rows)
        edge_rows = row_of[edge_src]

        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        offsets = np.zeros((num_rows, k + 1), dtype=np.int64)
        if len(edge_rows):
            np.cumsum(np.bincount(edge_rows, minlength=num_rows), out=indptr[1:])
            # Offset matrix: a (row, distance) histogram cumulated over the
            # distance axis gives ends[b] = #neighbours with distance <= b.
            histogram = np.bincount(
                edge_rows * (k + 1) + dt[edge_dst], minlength=num_rows * (k + 1)
            ).reshape(num_rows, k + 1)
            np.cumsum(histogram, axis=1, out=offsets)

        # Candidate partitions C_i: vertex v belongs to positions
        # v.s .. k - v.t, again one ragged expansion plus a stable sort.
        if num_rows:
            first = ds[rows]
            span = (k - dt[rows]) - first + 1
            total = int(span.sum())
            shifts = np.cumsum(span) - span
            flat_positions = (
                np.repeat(first - shifts, span) + np.arange(total, dtype=np.int64)
            )
            flat_vertices = np.repeat(rows, span)
            part_order = np.argsort(flat_positions, kind="stable")
            part_members = flat_vertices[part_order]
            part_indptr = np.zeros(k + 2, dtype=np.int64)
            np.cumsum(np.bincount(flat_positions, minlength=k + 1), out=part_indptr[1:])
        else:
            flat_positions = flat_vertices = _EMPTY
            part_members = _EMPTY
            part_indptr = np.zeros(k + 2, dtype=np.int64)

        # gamma_hat_i statistics for the preliminary estimator (Eq. 5):
        # the mean branching factor offsets[., k - i - 1] over C_i.
        gamma = np.zeros(max(k, 0), dtype=np.float64)
        if num_rows and k > 0:
            interior = flat_positions < k
            positions = flat_positions[interior]
            branch = offsets[row_of[flat_vertices[interior]], k - 1 - positions]
            sums = np.bincount(positions, weights=branch, minlength=k)[:k]
            counts = np.bincount(positions, minlength=k)[:k]
            np.divide(sums, counts, out=gamma, where=counts > 0)

        build_seconds = time.perf_counter() - started
        return cls(
            graph,
            query,
            dist_from_s,
            dist_to_t,
            rows,
            row_of,
            indptr,
            edge_dst,
            offsets,
            part_indptr,
            part_members,
            gamma,
            build_seconds,
            bfs_seconds,
            used_cached_distances=used_cache,
        )

    @classmethod
    def build_group(
        cls,
        graph: DiGraph,
        queries: Sequence[Query],
        *,
        dist_from_s_rows: np.ndarray,
        dist_to_t: np.ndarray,
    ) -> List["LightWeightIndex"]:
        """Build the indexes of a target-sharing query group in one fused sweep.

        All ``queries`` must share the same target ``t`` and hop constraint
        ``k``.  ``dist_from_s_rows`` is the ``(len(queries), |V|)`` forward
        restricted-distance matrix — one multi-source sweep row per query,
        computed exactly like :meth:`build`'s forward BFS — and ``dist_to_t``
        the shared reverse distances.  The candidate masks, the ragged
        neighbour gather, the edge filtering and the ``(source, distance)``
        sort all run once over the whole group with a query-id sort column;
        each query's segment then assembles into an index byte-identical to
        what :meth:`build` would have produced from the same distances.
        """
        if not len(queries):
            return []
        t = queries[0].target
        k = queries[0].k
        for query in queries:
            if query.target != t or query.k != k:
                raise ValueError("build_group requires a target- and k-sharing group")
            query.validate(graph)
        started = time.perf_counter()
        m = len(queries)
        ds_m = dist_from_s_rows
        dt = dist_to_t
        sources = np.asarray([q.source for q in queries], dtype=np.int64)

        # Partition X per query, as one boolean matrix.
        in_x = (
            (ds_m != UNREACHABLE)
            & (dt != UNREACHABLE)[None, :]
            & (ds_m + dt[None, :] <= k)
        )
        q_of_row, rows_flat = np.nonzero(in_x)
        q_of_row = q_of_row.astype(np.int64, copy=False)
        rows_flat = rows_flat.astype(np.int64, copy=False)
        row_counts = np.bincount(q_of_row, minlength=m)
        row_bounds = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(row_counts, out=row_bounds[1:])
        local_row = np.arange(len(rows_flat), dtype=np.int64) - np.repeat(
            row_bounds[:-1], row_counts
        )
        row_of_m = np.full((m, graph.num_vertices), -1, dtype=np.int64)
        row_of_m[q_of_row, rows_flat] = local_row

        # Fused candidate-edge gather: every query's member sources in one
        # ragged expansion, tagged with a per-edge query id.
        out_indptr, out_indices = graph.out_csr()
        src_sel = rows_flat != t
        gather_src = rows_flat[src_sel]
        gather_qid = q_of_row[src_sel]
        widths = out_indptr[gather_src + 1] - out_indptr[gather_src]
        edge_src, edge_dst = ragged_gather(out_indptr, out_indices, gather_src)
        edge_qid = np.repeat(gather_qid, widths)
        if len(edge_src):
            dt_dst = dt[edge_dst]
            keep = (
                (edge_dst != sources[edge_qid])
                & (dt_dst != UNREACHABLE)
                & (ds_m[edge_qid, edge_src] + dt_dst + 1 <= k)
            )
            edge_src = edge_src[keep]
            edge_dst = edge_dst[keep]
            edge_qid = edge_qid[keep]

        # Per-query t self-loops (join padding), fed through the shared sort.
        loop_qids = np.flatnonzero(in_x[:, t]).astype(np.int64)
        if len(loop_qids):
            loop_vertices = np.full(len(loop_qids), t, dtype=np.int64)
            edge_src = np.concatenate([edge_src, loop_vertices])
            edge_dst = np.concatenate([edge_dst, loop_vertices])
            edge_qid = np.concatenate([edge_qid, loop_qids])

        # One stable sort for the whole group: the query-id major key keeps
        # each segment in exactly the (source, distance, adjacency) order of
        # the per-query sort in :meth:`build`.
        if len(edge_src):
            order = np.lexsort((dt[edge_dst], edge_src, edge_qid))
            edge_src = edge_src[order]
            edge_dst = edge_dst[order]
            edge_qid = edge_qid[order]
        edge_counts = np.bincount(edge_qid, minlength=m)
        edge_bounds = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(edge_counts, out=edge_bounds[1:])

        # The shared sweep is charged evenly across the group; each query
        # additionally pays for its own assembly.
        shared_share = (time.perf_counter() - started) / m
        indexes: List["LightWeightIndex"] = []
        for i, query in enumerate(queries):
            q_started = time.perf_counter()
            lo, hi = int(edge_bounds[i]), int(edge_bounds[i + 1])
            index = cls._assemble(
                graph,
                query,
                ds_m[i],
                dt,
                rows_flat[row_bounds[i] : row_bounds[i + 1]],
                row_of_m[i],
                edge_src[lo:hi],
                edge_dst[lo:hi],
                bfs_seconds=0.0,
                started=q_started,
                used_cache=True,
            )
            index.build_seconds += shared_share
            indexes.append(index)
        return indexes

    def record_stats(self, stats: EnumerationStats) -> None:
        """Record the build phases and index sizes into ``stats``.

        Used by :meth:`build` and by engines receiving a prebuilt index
        (group-fused batch execution), so both paths report identically.
        """
        stats.add_phase(Phase.BFS, self.bfs_seconds)
        stats.add_phase(Phase.INDEX, self.build_seconds)
        stats.index_edges = self.num_index_edges
        stats.index_vertices = self.num_index_vertices
        stats.index_bytes = self.estimated_bytes()
        stats.bfs_cache_hit = self.used_cached_distances

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """The hop constraint of the indexed query."""
        return self.query.k

    @property
    def num_index_vertices(self) -> int:
        """Number of vertices retained by the index (|X|)."""
        return int(len(self._rows))

    @property
    def is_empty(self) -> bool:
        """``True`` when the query provably has no results.

        The index is empty exactly when ``t`` is further than ``k`` hops from
        ``s`` (or unreachable), in which case no path can satisfy the hop
        constraint.
        """
        t = self.query.target
        d = int(self.dist_from_s[t])
        return d == UNREACHABLE or d > self.k

    def contains(self, v: int) -> bool:
        """``True`` when ``v`` survived the distance-based pruning."""
        return 0 <= v < len(self._row_of) and self._row_of[v] >= 0

    def members(self, i: int) -> np.ndarray:
        """``I(i)``: vertices that may appear at position ``i`` of a result.

        Returns a read-only numpy slice of the flat partition array, in
        ascending vertex order.
        """
        if i < 0 or i > self.k:
            return _EMPTY
        return self._part_members[self._part_indptr[i] : self._part_indptr[i + 1]]

    def neighbors_within(self, v: int, budget: int) -> np.ndarray:
        """``I_t(v, b)``: neighbours of ``v`` with distance to ``t`` at most ``b``.

        Returns a numpy slice of the sorted neighbour array; callers must not
        mutate it.  Vertices outside the index and negative budgets yield an
        empty array.
        """
        if budget < 0 or not (0 <= v < len(self._row_of)):
            return _EMPTY
        row = self._row_of[v]
        if row < 0:
            return _EMPTY
        if budget > self.k:
            budget = self.k
        start = self._indptr[row]
        return self._indices[start : start + self._offsets[row, budget]]

    def count_neighbors_within(self, v: int, budget: int) -> int:
        """``|I_t(v, b)|`` without materialising the slice."""
        if budget < 0 or not (0 <= v < len(self._row_of)):
            return 0
        row = self._row_of[v]
        if row < 0:
            return 0
        if budget > self.k:
            budget = self.k
        return int(self._offsets[row, budget])

    # ------------------------------------------------------------------ #
    # flat views for the enumeration inner loops
    # ------------------------------------------------------------------ #
    def flat_adjacency(self) -> tuple:
        """Plain-Python mirrors of the CSR arrays for the hot recursion.

        Returns ``(vertex_of, row_of, row_neighbors, row_offsets)``:

        * ``vertex_of`` — list mapping a row id back to its vertex id;
        * ``row_of`` — the int64 vertex-to-row array (used once per query to
          locate the start row);
        * ``row_neighbors[r]`` — Python list of the neighbour *row* ids of
          row ``r``, sorted by ascending distance to ``t``;
        * ``row_offsets[r][b]`` — the matching offset row, so the candidates
          within budget ``b`` are ``row_neighbors[r][: row_offsets[r][b]]``.

        The enumeration loops therefore run entirely in row space — one list
        slice per search-tree node and plain-int set membership per edge, no
        hash lookups and no numpy scalar boxing.  Materialised once per
        query and cached.
        """
        if self._flat is None:
            # Derived from the kernel mirrors so the expensive tolist() over
            # the neighbour array happens once per query even when both the
            # estimator (presliced rows) and a kernel (flat rows) run.
            vertex_of, _, neighbor_rows, bounds, _ = self.kernel_csr()
            row_neighbors = [
                neighbor_rows[bounds[r] : bounds[r + 1]]
                for r in range(len(self._rows))
            ]
            self._flat = (
                vertex_of,
                self._row_of,
                row_neighbors,
                self._offsets.tolist(),
            )
        return self._flat

    def kernel_csr(self) -> tuple:
        """Flat mirrors of the CSR arrays for the iterative kernels.

        Returns ``(vertex_of, row_of, neighbor_rows, indptr, offsets)``:

        * ``vertex_of`` — list mapping a row id back to its vertex id;
        * ``row_of`` — the int64 vertex-to-row array (used once per query to
          locate the start row);
        * ``neighbor_rows`` — ONE flat Python list of neighbour row ids in
          CSR order (no per-row sublists);
        * ``indptr`` — row bounds into ``neighbor_rows`` as a Python list;
        * ``offsets`` — the ``(|X|, k + 1)`` offset matrix flattened
          row-major, so the candidates of row ``r`` under budget ``b`` are
          ``neighbor_rows[indptr[r] : indptr[r] + offsets[r * (k + 1) + b]]``.

        Unlike :meth:`flat_adjacency` nothing is presliced: the kernels read
        candidate ranges straight off ``indptr``/``offsets``, and the only
        per-query cost is one ``tolist`` per array (plain Python ints, so
        the iterative inner loop never boxes a numpy scalar).  Materialised
        once per query and cached.
        """
        if self._kernel is None:
            neighbor_rows = (
                self._row_of[self._indices].tolist() if len(self._indices) else []
            )
            self._kernel = (
                self._rows.tolist(),
                self._row_of,
                neighbor_rows,
                self._indptr.tolist(),
                self._offsets.ravel().tolist(),
            )
        return self._kernel

    def native_csr(self) -> tuple:
        """Int64 numpy views of the CSR arrays for the vectorised engine.

        Returns ``(vertex_of, row_of, neighbor_rows, indptr, offsets)`` with
        the same meaning as :meth:`kernel_csr`, except every component stays
        a numpy array (``offsets`` keeps its ``(|X|, k + 1)`` shape): the
        native engine gathers candidate ranges with array ops directly, so
        no Python-int mirror is ever materialised.  The only derived array —
        neighbour *row* ids — is computed once per query and cached.
        """
        if self._native is None:
            neighbor_rows = (
                self._row_of[self._indices] if len(self._indices) else _EMPTY
            )
            self._native = (
                self._rows,
                self._row_of,
                neighbor_rows,
                self._indptr,
                self._offsets,
            )
        return self._native

    def partition_indptr(self) -> np.ndarray:
        """CSR bounds of the flat partition array: ``C_i`` spans
        ``partition_rows()[indptr[i] : indptr[i + 1]]``."""
        return self._part_indptr

    def partition_rows(self) -> np.ndarray:
        """Row ids of the flat partition array (parallel to ``members``)."""
        if self._part_rows is None:
            self._part_rows = (
                self._row_of[self._part_members] if len(self._part_members) else _EMPTY
            )
        return self._part_rows

    @property
    def rows(self) -> np.ndarray:
        """The indexed vertices in row order (ascending vertex id)."""
        return self._rows

    @property
    def row_of(self) -> np.ndarray:
        """Vertex-to-row translation array (``-1`` for pruned vertices)."""
        return self._row_of

    def in_neighbors_within(self, v: int, budget: int) -> np.ndarray:
        """``I_s(v, b)``: in-neighbours of ``v`` with distance from ``s`` at most ``b``.

        Built lazily because only the reverse-direction enumeration and a few
        tests need it; the optimizer's forward DP works on ``I_t`` instead.
        """
        if self._in_csr is None:
            self._build_in_index()
        in_indptr, in_indices, in_offsets = self._in_csr
        if budget < 0 or not (0 <= v < len(self._row_of)):
            return _EMPTY
        row = self._row_of[v]
        if row < 0:
            return _EMPTY
        if budget > self.k:
            budget = self.k
        start = in_indptr[row]
        return in_indices[start : start + in_offsets[row, budget]]

    def _build_in_index(self) -> None:
        """Mirror the forward CSR into an ``I_s`` CSR sorted by ``v.s``."""
        k = self.k
        num_rows = len(self._rows)
        edge_src = np.repeat(self._rows, np.diff(self._indptr))
        edge_dst = self._indices
        mask = edge_src != edge_dst  # the t self-loop has no reverse counterpart
        edge_src = edge_src[mask]
        edge_dst = edge_dst[mask]
        in_indptr = np.zeros(num_rows + 1, dtype=np.int64)
        in_offsets = np.zeros((num_rows, k + 1), dtype=np.int64)
        if len(edge_src):
            ds_src = self.dist_from_s[edge_src]
            dst_rows = self._row_of[edge_dst]
            order = np.lexsort((ds_src, dst_rows))
            edge_src = edge_src[order]
            dst_rows = dst_rows[order]
            np.cumsum(np.bincount(dst_rows, minlength=num_rows), out=in_indptr[1:])
            clamped = np.minimum(self.dist_from_s[edge_src], k)
            histogram = np.bincount(
                dst_rows * (k + 1) + clamped, minlength=num_rows * (k + 1)
            ).reshape(num_rows, k + 1)
            np.cumsum(histogram, axis=1, out=in_offsets)
        self._in_csr = (in_indptr, edge_src, in_offsets)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def gamma(self, i: int) -> float:
        """Average branching factor at position ``i`` (preliminary estimator)."""
        if i < 0 or i >= len(self._gamma):
            return 0.0
        return float(self._gamma[i])

    def gamma_array(self) -> np.ndarray:
        """All ``gamma_hat_i`` values as one float64 array (Eq. 5)."""
        return self._gamma

    def candidate_counts(self) -> List[int]:
        """``|C_i|`` for ``i`` in ``0..k``."""
        return np.diff(self._part_indptr).tolist()

    def distance_from_s(self, v: int) -> int:
        """``v.s`` — shortest distance from ``s`` avoiding ``t`` as intermediate."""
        return int(self.dist_from_s[v])

    def distance_to_t(self, v: int) -> int:
        """``v.t`` — shortest distance to ``t`` avoiding ``s`` as intermediate."""
        return int(self.dist_to_t[v])

    def index_edge_list(self) -> List[tuple]:
        """Materialise the index edges as ``(u, v)`` pairs (tests, ablation)."""
        sources = np.repeat(self._rows, np.diff(self._indptr))
        return list(zip(sources.tolist(), self._indices.tolist()))

    def estimated_bytes(self) -> int:
        """Approximate memory footprint of the index structures (Table 7).

        Counts 8 bytes per stored integer: neighbour entries, offset slots
        and partition membership.  The distance arrays are excluded because
        the paper's index-size accounting is per surviving vertex/edge.
        """
        neighbor_ints = len(self._indices)
        offset_ints = len(self._rows) * (self.k + 1)
        partition_ints = len(self._part_members)
        return 8 * (neighbor_ints + offset_ints + partition_ints)

    def degree_sequence(self) -> Sequence[int]:
        """Index out-degrees, handy for ablation analysis."""
        return np.diff(self._indptr).tolist()
