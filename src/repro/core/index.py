"""The light-weight, query-dependent index of PathEnum (Algorithm 3).

Given a query ``q(s, t, k)`` the index stores, for every vertex ``v`` that
can possibly appear on a result path (Proposition 4.3):

* ``v.s`` — the length of the shortest walk from ``s`` to ``v`` that does
  not pass through ``t`` as an intermediate vertex;
* ``v.t`` — the length of the shortest walk from ``v`` to ``t`` that does
  not pass through ``s`` as an intermediate vertex;
* the out-neighbours ``v'`` of ``v`` with ``v.s + v'.t + 1 <= k``, sorted by
  ascending ``v'.t`` together with an offset array indexed by distance —
  the Neighbors / Offset / Hash-Table layout of Figure 4.

The two lookup operations of the paper are then O(1):

* :meth:`LightWeightIndex.members` — ``I(i)``, the candidate set ``C_i`` of
  vertices that may appear at position ``i`` of a result;
* :meth:`LightWeightIndex.neighbors_within` — ``I_t(v, b)``, the neighbours
  of ``v`` whose distance to ``t`` is at most ``b`` (returned as a list
  slice backed by the sorted neighbour array).

Following the join model of Section 3.1 the target ``t`` carries a single
self-loop (``H[t] = {t}``) so that join-based enumeration can pad walks
shorter than ``k`` up to full length.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.listener import Deadline
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded

__all__ = ["LightWeightIndex"]

EdgeFilter = Callable[[int, int], bool]


class LightWeightIndex:
    """Query-dependent index over the vertices that can appear on a result."""

    __slots__ = (
        "graph",
        "query",
        "dist_from_s",
        "dist_to_t",
        "_neighbors",
        "_ends",
        "_in_neighbors",
        "_in_ends",
        "_partitions",
        "_gamma",
        "num_index_edges",
        "build_seconds",
        "bfs_seconds",
    )

    def __init__(
        self,
        graph: DiGraph,
        query: Query,
        dist_from_s: np.ndarray,
        dist_to_t: np.ndarray,
        neighbors: Dict[int, List[int]],
        ends: Dict[int, List[int]],
        partitions: List[List[int]],
        gamma: List[float],
        num_index_edges: int,
        build_seconds: float,
        bfs_seconds: float,
    ) -> None:
        self.graph = graph
        self.query = query
        self.dist_from_s = dist_from_s
        self.dist_to_t = dist_to_t
        self._neighbors = neighbors
        self._ends = ends
        self._in_neighbors: Optional[Dict[int, List[int]]] = None
        self._in_ends: Optional[Dict[int, List[int]]] = None
        self._partitions = partitions
        self._gamma = gamma
        self.num_index_edges = num_index_edges
        self.build_seconds = build_seconds
        self.bfs_seconds = bfs_seconds

    # ------------------------------------------------------------------ #
    # construction (Algorithm 3)
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        query: Query,
        *,
        edge_filter: Optional[EdgeFilter] = None,
        deadline: Optional[Deadline] = None,
        stats: Optional[EnumerationStats] = None,
    ) -> "LightWeightIndex":
        """Build the index for ``query`` on ``graph``.

        ``edge_filter(u, v)`` restricts the graph on the fly (predicate
        constraints, Appendix E).  When ``stats`` is given the BFS and index
        construction phases are recorded in it.
        """
        query.validate(graph)
        started = time.perf_counter()
        s, t, k = query.source, query.target, query.k

        bfs_started = time.perf_counter()
        dist_from_s = bfs_distances_bounded(
            graph, s, cutoff=k, no_expand=t, edge_filter=edge_filter
        )
        dist_to_t = bfs_distances_bounded(
            graph, t, cutoff=k, reverse=True, no_expand=s, edge_filter=edge_filter
        )
        bfs_seconds = time.perf_counter() - bfs_started
        if deadline is not None:
            deadline.check()

        # Partition X: vertices with v.s + v.t <= k (Lines 2-4 of Algorithm 3).
        ds = dist_from_s
        dt = dist_to_t
        in_x = (ds != UNREACHABLE) & (dt != UNREACHABLE) & (ds + dt <= k)
        members = np.flatnonzero(in_x)

        neighbors: Dict[int, List[int]] = {}
        ends: Dict[int, List[int]] = {}
        num_index_edges = 0
        dt_list = dt  # local alias for the hot loop
        for v in members:
            v = int(v)
            if deadline is not None:
                deadline.check()
            if v == t:
                continue
            budget = k - int(ds[v]) - 1
            if budget < 0:
                continue
            collected: List[int] = []
            for v_next in graph.neighbors(v):
                v_next = int(v_next)
                if v_next == s:
                    continue
                d_next = int(dt_list[v_next])
                if d_next == UNREACHABLE or d_next > budget:
                    continue
                if edge_filter is not None and not edge_filter(v, v_next):
                    continue
                collected.append(v_next)
            if not collected:
                neighbors[v] = []
                ends[v] = [0] * (k + 1)
                continue
            collected.sort(key=lambda w: int(dt_list[w]))
            neighbors[v] = collected
            # Offset array: ends[b] = number of neighbours with distance <= b.
            end_positions = [0] * (k + 1)
            position = 0
            for b in range(k + 1):
                while position < len(collected) and int(dt_list[collected[position]]) <= b:
                    position += 1
                end_positions[b] = position
            ends[v] = end_positions
            num_index_edges += len(collected)

        # The target keeps a single self-loop so that join padding works
        # (Line 10 of Algorithm 3, property (3) of the join model).
        if bool(in_x[t]) if graph.has_vertex(t) else False:
            neighbors[t] = [t]
            ends[t] = [1] * (k + 1)
            num_index_edges += 1

        # Candidate partitions C_i (the I(i) lookup).
        partitions: List[List[int]] = [[] for _ in range(k + 1)]
        for v in members:
            v = int(v)
            for i in range(int(ds[v]), k - int(dt[v]) + 1):
                partitions[i].append(v)

        # gamma_hat_i statistics for the preliminary estimator (Eq. 5).
        gamma: List[float] = []
        for i in range(k):
            candidates = partitions[i]
            if not candidates:
                gamma.append(0.0)
                continue
            budget = k - i - 1
            total = 0
            for v in candidates:
                end_positions = ends.get(v)
                if end_positions is not None and budget >= 0:
                    total += end_positions[budget]
            gamma.append(total / len(candidates))

        build_seconds = time.perf_counter() - started
        index = cls(
            graph,
            query,
            dist_from_s,
            dist_to_t,
            neighbors,
            ends,
            partitions,
            gamma,
            num_index_edges,
            build_seconds,
            bfs_seconds,
        )
        if stats is not None:
            stats.add_phase(Phase.BFS, bfs_seconds)
            stats.add_phase(Phase.INDEX, build_seconds)
            stats.index_edges = num_index_edges
            stats.index_vertices = index.num_index_vertices
            stats.index_bytes = index.estimated_bytes()
        return index

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """The hop constraint of the indexed query."""
        return self.query.k

    @property
    def num_index_vertices(self) -> int:
        """Number of vertices retained by the index (|X|)."""
        return len(self._neighbors) if self._neighbors else 0

    @property
    def is_empty(self) -> bool:
        """``True`` when the query provably has no results.

        The index is empty exactly when ``t`` is further than ``k`` hops from
        ``s`` (or unreachable), in which case no path can satisfy the hop
        constraint.
        """
        t = self.query.target
        d = int(self.dist_from_s[t])
        return d == UNREACHABLE or d > self.k

    def contains(self, v: int) -> bool:
        """``True`` when ``v`` survived the distance-based pruning."""
        return v in self._ends

    def members(self, i: int) -> List[int]:
        """``I(i)``: vertices that may appear at position ``i`` of a result."""
        if i < 0 or i > self.k:
            return []
        return self._partitions[i]

    def neighbors_within(self, v: int, budget: int) -> List[int]:
        """``I_t(v, b)``: neighbours of ``v`` with distance to ``t`` at most ``b``.

        Returns a list slice; callers must not mutate it.  Vertices outside
        the index and negative budgets yield an empty list.
        """
        end_positions = self._ends.get(v)
        if end_positions is None or budget < 0:
            return []
        if budget > self.k:
            budget = self.k
        return self._neighbors[v][: end_positions[budget]]

    def count_neighbors_within(self, v: int, budget: int) -> int:
        """``|I_t(v, b)|`` without materialising the slice."""
        end_positions = self._ends.get(v)
        if end_positions is None or budget < 0:
            return 0
        if budget > self.k:
            budget = self.k
        return end_positions[budget]

    def in_neighbors_within(self, v: int, budget: int) -> List[int]:
        """``I_s(v, b)``: in-neighbours of ``v`` with distance from ``s`` at most ``b``.

        Built lazily because only the reverse-direction enumeration and a few
        tests need it; the optimizer's forward DP works on ``I_t`` instead.
        """
        if self._in_neighbors is None:
            self._build_in_index()
        assert self._in_neighbors is not None and self._in_ends is not None
        end_positions = self._in_ends.get(v)
        if end_positions is None or budget < 0:
            return []
        if budget > self.k:
            budget = self.k
        return self._in_neighbors[v][: end_positions[budget]]

    def _build_in_index(self) -> None:
        ds = self.dist_from_s
        in_neighbors: Dict[int, List[int]] = {v: [] for v in self._ends}
        for u, targets in self._neighbors.items():
            for v in targets:
                if v == u:
                    continue  # the t self-loop has no reverse counterpart
                in_neighbors.setdefault(v, []).append(u)
        in_ends: Dict[int, List[int]] = {}
        for v, sources in in_neighbors.items():
            sources.sort(key=lambda w: int(ds[w]))
            end_positions = [0] * (self.k + 1)
            position = 0
            for b in range(self.k + 1):
                while position < len(sources) and int(ds[sources[position]]) <= b:
                    position += 1
                end_positions[b] = position
            in_ends[v] = end_positions
        self._in_neighbors = in_neighbors
        self._in_ends = in_ends

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def gamma(self, i: int) -> float:
        """Average branching factor at position ``i`` (preliminary estimator)."""
        if i < 0 or i >= len(self._gamma):
            return 0.0
        return self._gamma[i]

    def candidate_counts(self) -> List[int]:
        """``|C_i|`` for ``i`` in ``0..k``."""
        return [len(p) for p in self._partitions]

    def distance_from_s(self, v: int) -> int:
        """``v.s`` — shortest distance from ``s`` avoiding ``t`` as intermediate."""
        return int(self.dist_from_s[v])

    def distance_to_t(self, v: int) -> int:
        """``v.t`` — shortest distance to ``t`` avoiding ``s`` as intermediate."""
        return int(self.dist_to_t[v])

    def index_edge_list(self) -> List[tuple]:
        """Materialise the index edges as ``(u, v)`` pairs (tests, ablation)."""
        edges = []
        for u, targets in self._neighbors.items():
            for v in targets:
                edges.append((u, v))
        return edges

    def estimated_bytes(self) -> int:
        """Approximate memory footprint of the index structures (Table 7).

        Counts 8 bytes per stored integer: neighbour entries, offset slots
        and partition membership.  The distance arrays are excluded because
        the paper's index-size accounting is per surviving vertex/edge.
        """
        neighbor_ints = sum(len(v) for v in self._neighbors.values())
        offset_ints = len(self._ends) * (self.k + 1)
        partition_ints = sum(len(p) for p in self._partitions)
        return 8 * (neighbor_ints + offset_ints + partition_ints)

    def degree_sequence(self) -> Sequence[int]:
        """Index out-degrees, handy for ablation analysis."""
        return [len(v) for v in self._neighbors.values()]
