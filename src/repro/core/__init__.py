"""PathEnum core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.engine.PathEnum` — the complete system (index +
  cost-based optimizer + DFS/join execution);
* :class:`~repro.core.engine.IdxDfs` / :class:`~repro.core.engine.IdxJoin` —
  the fixed-plan variants evaluated in the paper;
* :func:`~repro.core.engine.enumerate_paths` /
  :func:`~repro.core.engine.count_paths` — one-call convenience API;
* :class:`~repro.core.query.Query`, :class:`~repro.core.listener.RunConfig`,
  :class:`~repro.core.result.QueryResult` — query/result plumbing;
* :class:`~repro.core.index.LightWeightIndex` and the estimator/optimizer
  helpers for users who want to drive the pieces individually;
* the iterative enumeration kernels of :mod:`repro.core.kernels`
  (:func:`run_dfs_kernel` / :func:`run_join_kernel`) and the columnar
  :class:`~repro.core.result.PathBuffer` they emit into;
* the constraint extensions of Appendix E.
"""

from repro.core.algorithm import Algorithm
from repro.core.constraints import (
    AccumulativeConstraint,
    AutomatonConstraint,
    PathConstraint,
    PredicateConstraint,
    SequenceAutomaton,
)
from repro.core.dfs import run_idx_dfs
from repro.core.engine import (
    BatchExecutor,
    BatchResult,
    BatchStats,
    ExecutorCore,
    IdxDfs,
    IdxJoin,
    PathEnum,
    ProcessBatchExecutor,
    QuerySession,
    StreamRun,
    count_paths,
    enumerate_paths,
)
from repro.core.estimator import (
    CardinalityEstimate,
    dfs_cost,
    find_cut_position,
    full_estimate,
    join_cost,
    preliminary_estimate,
)
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.kernels import run_dfs_kernel, run_join_kernel, run_subquery_kernel
from repro.core.listener import ENGINE_CHOICES, Deadline, ResultCollector, RunConfig
from repro.core.optimizer import DEFAULT_TAU, Plan, choose_plan
from repro.core.query import Query
from repro.core.relations import ChainRelations, Relation, build_relations
from repro.core.result import EnumerationStats, PathBuffer, Phase, QueryResult
from repro.core.reverse import IdxDfsReverse, run_idx_dfs_reverse

__all__ = [
    "Algorithm",
    "PathEnum",
    "IdxDfs",
    "IdxJoin",
    "QuerySession",
    "BatchExecutor",
    "ProcessBatchExecutor",
    "ExecutorCore",
    "StreamRun",
    "BatchResult",
    "BatchStats",
    "enumerate_paths",
    "count_paths",
    "Query",
    "RunConfig",
    "ENGINE_CHOICES",
    "QueryResult",
    "PathBuffer",
    "EnumerationStats",
    "Phase",
    "Deadline",
    "ResultCollector",
    "LightWeightIndex",
    "run_idx_dfs",
    "run_idx_join",
    "run_dfs_kernel",
    "run_join_kernel",
    "run_subquery_kernel",
    "IdxDfsReverse",
    "run_idx_dfs_reverse",
    "Plan",
    "choose_plan",
    "DEFAULT_TAU",
    "CardinalityEstimate",
    "preliminary_estimate",
    "full_estimate",
    "find_cut_position",
    "dfs_cost",
    "join_cost",
    "ChainRelations",
    "Relation",
    "build_relations",
    "PathConstraint",
    "PredicateConstraint",
    "AccumulativeConstraint",
    "AutomatonConstraint",
    "SequenceAutomaton",
]
