"""Emission handling: collectors, deadlines and run configuration.

Every enumeration algorithm in the package reports results through a
:class:`ResultCollector` and periodically polls a :class:`Deadline`.  This is
how the paper's measurement protocol is expressed:

* *query time* — wall-clock until the algorithm finishes or the deadline
  (the paper's two-minute limit) fires;
* *response time* — the collector records the instant the 1 000-th result is
  emitted;
* *throughput* — results emitted before the deadline divided by elapsed time.

Keeping this logic out of the algorithms keeps each of them close to the
paper's pseudocode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.result import PathBuffer
from repro.errors import EnumerationTimeout, ResultLimitReached

__all__ = ["Deadline", "ResultCollector", "RunConfig", "ENGINE_CHOICES"]

#: Recognised values of :attr:`RunConfig.engine`.
ENGINE_CHOICES = ("auto", "native", "kernel", "recursive")

Path = Tuple[int, ...]


class Deadline:
    """Cooperative deadline checked inside enumeration loops.

    ``check()`` is cheap enough to call per search-tree node: it only reads
    the clock every ``poll_interval`` calls.  A ``None`` time limit produces
    a deadline that never fires.
    """

    __slots__ = ("_expires_at", "_poll_interval", "_countdown", "started_at")

    def __init__(self, time_limit_seconds: Optional[float], *, poll_interval: int = 256) -> None:
        self.started_at = time.perf_counter()
        self._poll_interval = max(1, poll_interval)
        self._countdown = self._poll_interval
        self._expires_at = (
            None if time_limit_seconds is None else self.started_at + time_limit_seconds
        )

    @property
    def expired(self) -> bool:
        """Non-raising check of whether the deadline has passed."""
        return self._expires_at is not None and time.perf_counter() >= self._expires_at

    def elapsed(self) -> float:
        """Seconds elapsed since the deadline was created."""
        return time.perf_counter() - self.started_at

    def check(self) -> None:
        """Raise :class:`EnumerationTimeout` when the deadline has passed."""
        if self._expires_at is None:
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._poll_interval
        if time.perf_counter() >= self._expires_at:
            raise EnumerationTimeout()

    def check_every(self, n: int) -> None:
        """Charge ``n`` work units against the poll countdown in one call.

        Amortised form of :meth:`check`: a loop that expands ``n`` edges per
        node pays one method call instead of ``n``, and the clock is still
        read roughly once per ``poll_interval`` units of work.  ``n <= 0``
        charges nothing (a dead end costs no edges).
        """
        if self._expires_at is None or n <= 0:
            return
        self._countdown -= n
        if self._countdown > 0:
            return
        self._countdown = self._poll_interval
        if time.perf_counter() >= self._expires_at:
            raise EnumerationTimeout()

    def remaining(self) -> Optional[float]:
        """Seconds left before expiry, or ``None`` for unlimited deadlines."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.perf_counter())


class ResultCollector:
    """Receives emitted paths and records the response-time probe.

    Parameters
    ----------
    store_paths:
        Keep the emitted paths in memory.  Benchmarks over huge result sets
        disable this and only count.
    result_limit:
        Stop the enumeration (via :class:`ResultLimitReached`) after this
        many results; ``None`` means unlimited.
    response_k:
        Record the elapsed time when the ``response_k``-th result arrives —
        the paper uses 1 000.
    on_result:
        Optional callback invoked with every emitted path (streaming use).
    """

    __slots__ = ("store_paths", "result_limit", "response_k", "on_result", "paths", "count",
                 "_started_at", "response_seconds", "_buffer")

    def __init__(
        self,
        *,
        store_paths: bool = True,
        result_limit: Optional[int] = None,
        response_k: int = 1000,
        on_result: Optional[Callable[[Path], None]] = None,
    ) -> None:
        self.store_paths = store_paths
        self.result_limit = result_limit
        self.response_k = response_k
        self.on_result = on_result
        self.paths: List[Path] = []
        self.count = 0
        self._started_at = time.perf_counter()
        self.response_seconds: Optional[float] = None
        #: Columnar storage filled by :meth:`emit_block` (kernel runs).
        self._buffer: Optional[PathBuffer] = None

    def restart_clock(self) -> None:
        """Reset the response-time clock (called when the query actually starts)."""
        self._started_at = time.perf_counter()

    def emit(self, path: Sequence[int]) -> None:
        """Record one result path.

        Raises :class:`ResultLimitReached` once the configured limit is hit;
        the raising call is still counted, so a limit of ``n`` yields exactly
        ``n`` results.
        """
        self.count += 1
        materialised = tuple(path)
        if self.store_paths:
            self.paths.append(materialised)
        if self.on_result is not None:
            self.on_result(materialised)
        if self.response_seconds is None and self.count >= self.response_k:
            self.response_seconds = time.perf_counter() - self._started_at
        if self.result_limit is not None and self.count >= self.result_limit:
            raise ResultLimitReached()

    def emit_block(self, data: Sequence[int], bounds: Sequence[int]) -> None:
        """Record a whole block of paths stored columnar.

        ``data`` holds the block's vertices concatenated; ``bounds`` the end
        offset of each path within ``data`` (no leading zero).  This is the
        bulk entry point of the iterative kernels: with path storage on and
        no streaming callback the block lands in a :class:`PathBuffer`
        untouched — no per-path tuple is ever built.  Limit semantics match
        :meth:`emit`: the block is truncated so that exactly
        ``result_limit`` results exist, then :class:`ResultLimitReached` is
        raised.
        """
        total = len(bounds)
        if total == 0:
            return
        limit = self.result_limit
        take = total
        if limit is not None:
            room = limit - self.count
            if room <= 0:
                raise ResultLimitReached()
            take = min(total, room)
        if self.store_paths:
            if self.on_result is None and not self.paths:
                if self._buffer is None:
                    self._buffer = PathBuffer()
                self._buffer.extend_block(data, bounds, take)
            else:
                # Mixed or streaming use: fall back to materialised tuples so
                # ordering against previously emitted paths is preserved.
                start = 0
                for i in range(take):
                    stop = bounds[i]
                    self.paths.append(tuple(data[start:stop]))
                    start = stop
        if self.on_result is not None:
            start = 0
            for i in range(take):
                stop = bounds[i]
                self.on_result(tuple(data[start:stop]))
                start = stop
        self.count += take
        if self.response_seconds is None and self.count >= self.response_k:
            self.response_seconds = time.perf_counter() - self._started_at
        if limit is not None and self.count >= limit:
            raise ResultLimitReached()

    def emit_array_block(self, data, bounds) -> None:
        """Record a block of paths stored as numpy int64 arrays.

        Same contract as :meth:`emit_block` (``bounds`` holds end offsets, no
        leading zero), but the columns arrive as sealed numpy arrays from the
        vectorised native engine and — with path storage on and no streaming
        callback — land in the :class:`PathBuffer` as whole array segments:
        no per-vertex Python int is ever created on the fast path.
        """
        total = len(bounds)
        if total == 0:
            return
        limit = self.result_limit
        take = total
        if limit is not None:
            room = limit - self.count
            if room <= 0:
                raise ResultLimitReached()
            take = min(total, room)
        if self.store_paths:
            if self.on_result is None and not self.paths:
                if self._buffer is None:
                    self._buffer = PathBuffer()
                self._buffer.extend_array_block(data, bounds, take)
            else:
                # Mixed or streaming use: materialise plain-int tuples so
                # ordering against previously emitted paths is preserved and
                # no numpy scalar leaks into a path.
                flat = data.tolist()
                ends = bounds.tolist()
                start = 0
                for i in range(take):
                    stop = ends[i]
                    self.paths.append(tuple(flat[start:stop]))
                    start = stop
        if self.on_result is not None:
            flat = data.tolist()
            ends = bounds.tolist()
            start = 0
            for i in range(take):
                stop = ends[i]
                self.on_result(tuple(flat[start:stop]))
                start = stop
        self.count += take
        if self.response_seconds is None and self.count >= self.response_k:
            self.response_seconds = time.perf_counter() - self._started_at
        if limit is not None and self.count >= limit:
            raise ResultLimitReached()

    def remaining_before_flush(self) -> Optional[int]:
        """How many results a kernel may buffer before it must flush.

        ``None`` means no constraint: the kernel flushes at its own block
        granularity.  A finite value keeps the result-limit raise and the
        response-time probe accurate to the path (not the block): the next
        flush must happen when that many more results have been found.
        """
        bounds = []
        if self.result_limit is not None:
            bounds.append(self.result_limit - self.count)
        if self.response_seconds is None and self.response_k > self.count:
            bounds.append(self.response_k - self.count)
        return min(bounds) if bounds else None

    def stored_paths(self) -> Optional[Union[List[Path], PathBuffer]]:
        """The stored paths, or ``None`` when storage was disabled.

        Returns the columnar :class:`PathBuffer` when the paths arrived in
        block form (kernel runs), otherwise the list of tuples; both read
        identically through :attr:`QueryResult.paths`.
        """
        if not self.store_paths:
            return None
        if self._buffer is not None and len(self._buffer):
            if self.paths:
                # Mixed per-path and block emission (not produced by any
                # shipped engine, but cheap to keep consistent).  Blocks land
                # in the buffer only while the tuple list is empty, so the
                # buffered paths always precede the loose ones.
                return self._buffer.to_paths() + self.paths
            return self._buffer
        return self.paths


@dataclass
class RunConfig:
    """Options shared by every algorithm's ``run`` entry point."""

    #: Keep the full list of paths in the result object.
    store_paths: bool = True
    #: Stop after this many results (``None`` = enumerate everything).
    result_limit: Optional[int] = None
    #: Cooperative time limit in seconds (``None`` = no limit).  The paper
    #: uses 120 s; the benchmark harness scales this down.
    time_limit_seconds: Optional[float] = None
    #: Record the response time at this many results (the paper uses 1000).
    response_k: int = 1000
    #: Threshold tau of the preliminary estimator (Section 6.2).
    tau: float = 1e5
    #: Optional path constraint (predicate / accumulative / automaton).
    constraint: Optional[object] = None
    #: Streaming callback for each result.
    on_result: Optional[Callable[[Path], None]] = None
    #: Enumeration engine selection: ``"auto"`` picks the fastest engine the
    #: query supports — the compiled/vectorised native engine
    #: (:mod:`repro.core.native`) when its JIT toolchain is importable, the
    #: iterative kernels otherwise, and the recursive engines whenever the
    #: query is constrained.  ``"native"`` / ``"kernel"`` / ``"recursive"``
    #: force one tier; a forced ``"native"`` run uses the pure-numpy
    #: vectorised tier when Numba is absent (falling back to ``"kernel"``
    #: only under ``REPRO_NATIVE=jit``), and constrained specs fall back to
    #: the recursive engines (forcing ``"kernel"`` on a constrained query
    #: raises, since the constraint protocol is recursive-only).
    engine: str = "auto"

    def make_collector(self) -> ResultCollector:
        """Build a collector matching this configuration."""
        return ResultCollector(
            store_paths=self.store_paths,
            result_limit=self.result_limit,
            response_k=self.response_k,
            on_result=self.on_result,
        )

    def make_deadline(self) -> Deadline:
        """Build a deadline matching this configuration."""
        return Deadline(self.time_limit_seconds)

    def replace(self, **changes) -> "RunConfig":
        """Return a copy with the given fields changed."""
        data = {
            "store_paths": self.store_paths,
            "result_limit": self.result_limit,
            "time_limit_seconds": self.time_limit_seconds,
            "response_k": self.response_k,
            "tau": self.tau,
            "constraint": self.constraint,
            "on_result": self.on_result,
            "engine": self.engine,
        }
        data.update(changes)
        return RunConfig(**data)
