"""Emission handling: collectors, deadlines and run configuration.

Every enumeration algorithm in the package reports results through a
:class:`ResultCollector` and periodically polls a :class:`Deadline`.  This is
how the paper's measurement protocol is expressed:

* *query time* — wall-clock until the algorithm finishes or the deadline
  (the paper's two-minute limit) fires;
* *response time* — the collector records the instant the 1 000-th result is
  emitted;
* *throughput* — results emitted before the deadline divided by elapsed time.

Keeping this logic out of the algorithms keeps each of them close to the
paper's pseudocode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import EnumerationTimeout, ResultLimitReached

__all__ = ["Deadline", "ResultCollector", "RunConfig"]

Path = Tuple[int, ...]


class Deadline:
    """Cooperative deadline checked inside enumeration loops.

    ``check()`` is cheap enough to call per search-tree node: it only reads
    the clock every ``poll_interval`` calls.  A ``None`` time limit produces
    a deadline that never fires.
    """

    __slots__ = ("_expires_at", "_poll_interval", "_countdown", "started_at")

    def __init__(self, time_limit_seconds: Optional[float], *, poll_interval: int = 256) -> None:
        self.started_at = time.perf_counter()
        self._poll_interval = max(1, poll_interval)
        self._countdown = self._poll_interval
        self._expires_at = (
            None if time_limit_seconds is None else self.started_at + time_limit_seconds
        )

    @property
    def expired(self) -> bool:
        """Non-raising check of whether the deadline has passed."""
        return self._expires_at is not None and time.perf_counter() >= self._expires_at

    def elapsed(self) -> float:
        """Seconds elapsed since the deadline was created."""
        return time.perf_counter() - self.started_at

    def check(self) -> None:
        """Raise :class:`EnumerationTimeout` when the deadline has passed."""
        if self._expires_at is None:
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._poll_interval
        if time.perf_counter() >= self._expires_at:
            raise EnumerationTimeout()

    def remaining(self) -> Optional[float]:
        """Seconds left before expiry, or ``None`` for unlimited deadlines."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.perf_counter())


class ResultCollector:
    """Receives emitted paths and records the response-time probe.

    Parameters
    ----------
    store_paths:
        Keep the emitted paths in memory.  Benchmarks over huge result sets
        disable this and only count.
    result_limit:
        Stop the enumeration (via :class:`ResultLimitReached`) after this
        many results; ``None`` means unlimited.
    response_k:
        Record the elapsed time when the ``response_k``-th result arrives —
        the paper uses 1 000.
    on_result:
        Optional callback invoked with every emitted path (streaming use).
    """

    __slots__ = ("store_paths", "result_limit", "response_k", "on_result", "paths", "count",
                 "_started_at", "response_seconds")

    def __init__(
        self,
        *,
        store_paths: bool = True,
        result_limit: Optional[int] = None,
        response_k: int = 1000,
        on_result: Optional[Callable[[Path], None]] = None,
    ) -> None:
        self.store_paths = store_paths
        self.result_limit = result_limit
        self.response_k = response_k
        self.on_result = on_result
        self.paths: List[Path] = []
        self.count = 0
        self._started_at = time.perf_counter()
        self.response_seconds: Optional[float] = None

    def restart_clock(self) -> None:
        """Reset the response-time clock (called when the query actually starts)."""
        self._started_at = time.perf_counter()

    def emit(self, path: Sequence[int]) -> None:
        """Record one result path.

        Raises :class:`ResultLimitReached` once the configured limit is hit;
        the raising call is still counted, so a limit of ``n`` yields exactly
        ``n`` results.
        """
        self.count += 1
        materialised = tuple(path)
        if self.store_paths:
            self.paths.append(materialised)
        if self.on_result is not None:
            self.on_result(materialised)
        if self.response_seconds is None and self.count >= self.response_k:
            self.response_seconds = time.perf_counter() - self._started_at
        if self.result_limit is not None and self.count >= self.result_limit:
            raise ResultLimitReached()

    def stored_paths(self) -> Optional[List[Path]]:
        """The stored paths, or ``None`` when storage was disabled."""
        return self.paths if self.store_paths else None


@dataclass
class RunConfig:
    """Options shared by every algorithm's ``run`` entry point."""

    #: Keep the full list of paths in the result object.
    store_paths: bool = True
    #: Stop after this many results (``None`` = enumerate everything).
    result_limit: Optional[int] = None
    #: Cooperative time limit in seconds (``None`` = no limit).  The paper
    #: uses 120 s; the benchmark harness scales this down.
    time_limit_seconds: Optional[float] = None
    #: Record the response time at this many results (the paper uses 1000).
    response_k: int = 1000
    #: Threshold tau of the preliminary estimator (Section 6.2).
    tau: float = 1e5
    #: Optional path constraint (predicate / accumulative / automaton).
    constraint: Optional[object] = None
    #: Streaming callback for each result.
    on_result: Optional[Callable[[Path], None]] = None

    def make_collector(self) -> ResultCollector:
        """Build a collector matching this configuration."""
        return ResultCollector(
            store_paths=self.store_paths,
            result_limit=self.result_limit,
            response_k=self.response_k,
            on_result=self.on_result,
        )

    def make_deadline(self) -> Deadline:
        """Build a deadline matching this configuration."""
        return Deadline(self.time_limit_seconds)

    def replace(self, **changes) -> "RunConfig":
        """Return a copy with the given fields changed."""
        data = {
            "store_paths": self.store_paths,
            "result_limit": self.result_limit,
            "time_limit_seconds": self.time_limit_seconds,
            "response_k": self.response_k,
            "tau": self.tau,
            "constraint": self.constraint,
            "on_result": self.on_result,
        }
        data.update(changes)
        return RunConfig(**data)
