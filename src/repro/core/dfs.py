"""Depth-first search on the light-weight index (Algorithm 4, IDX-DFS).

The search extends the partial result ``M`` one vertex at a time.  At every
step only the neighbours returned by ``I_t(v, k - L(M) - 1)`` are considered,
so the hop constraint never has to be re-checked against a distance oracle —
that is the whole point of the index.

The implementation additionally supports the constraint extensions of
Appendix E: an accumulative value carried along the partial result
(Algorithm 7) and a finite-automaton state driven by edge labels
(Algorithm 8).  Both are provided through the :mod:`repro.core.constraints`
protocol and add a single state object per recursion level.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constraints import PathConstraint
from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector
from repro.core.result import EnumerationStats

__all__ = ["run_idx_dfs"]


def run_idx_dfs(
    index: LightWeightIndex,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
    constraint: Optional[PathConstraint] = None,
) -> int:
    """Enumerate all hop-constrained s-t paths via DFS on ``index``.

    Returns the number of results emitted.  Deadline expiry and result
    limits propagate as :class:`EnumerationTimeout` / ``ResultLimitReached``
    and are handled by the caller (the engine), so this function stays close
    to the paper's pseudocode.
    """
    stats = stats if stats is not None else EnumerationStats()
    query = index.query
    s, t, k = query.source, query.target, query.k
    if index.is_empty:
        return 0

    path = [s]
    on_path = {s}
    initial_state = None if constraint is None else constraint.initial_state()
    emitted = _search(
        index,
        t,
        k,
        path,
        on_path,
        collector,
        deadline,
        stats,
        constraint,
        initial_state,
    )
    stats.results_emitted += emitted
    return emitted


def _search(
    index: LightWeightIndex,
    t: int,
    k: int,
    path: list,
    on_path: set,
    collector: ResultCollector,
    deadline: Optional[Deadline],
    stats: EnumerationStats,
    constraint: Optional[PathConstraint],
    state,
) -> int:
    """Recursive Search procedure; returns the number of results in this subtree."""
    if deadline is not None:
        deadline.check()
    v = path[-1]
    if v == t:
        if constraint is None or constraint.accepts(state):
            collector.emit(path)
            return 1
        return 0

    budget = k - (len(path) - 1) - 1
    candidates = index.neighbors_within(v, budget)
    stats.edges_accessed += len(candidates)
    found = 0
    for v_next in candidates:
        if v_next in on_path:
            continue
        if constraint is not None:
            next_state = constraint.transition(state, v, v_next)
            if next_state is constraint.REJECT:
                continue
        else:
            next_state = None
        stats.partial_results_generated += 1
        path.append(v_next)
        on_path.add(v_next)
        try:
            sub_found = _search(
                index,
                t,
                k,
                path,
                on_path,
                collector,
                deadline,
                stats,
                constraint,
                next_state,
            )
        finally:
            path.pop()
            on_path.discard(v_next)
        if sub_found == 0:
            stats.invalid_partial_results += 1
        found += sub_found
    return found
