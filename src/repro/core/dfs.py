"""Depth-first search on the light-weight index (Algorithm 4, IDX-DFS).

The search extends the partial result ``M`` one vertex at a time.  At every
step only the neighbours returned by ``I_t(v, k - L(M) - 1)`` are considered,
so the hop constraint never has to be re-checked against a distance oracle —
that is the whole point of the index.

The inner loop works directly on the index's flat CSR mirrors
(:meth:`~repro.core.index.LightWeightIndex.flat_adjacency`) and runs in row
space: the recursion carries index rows, the candidates of row ``r`` under
budget ``b`` are the presliced list ``row_neighbors[r][: row_offsets[r][b]]``
and vertex ids are materialised only when a vertex joins the partial path.
No per-step hash lookup remains.

The implementation additionally supports the constraint extensions of
Appendix E: an accumulative value carried along the partial result
(Algorithm 7) and a finite-automaton state driven by edge labels
(Algorithm 8).  Both are provided through the :mod:`repro.core.constraints`
protocol and add a single state object per recursion level.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constraints import PathConstraint
from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector
from repro.core.result import EnumerationStats

__all__ = ["run_idx_dfs"]


def run_idx_dfs(
    index: LightWeightIndex,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
    constraint: Optional[PathConstraint] = None,
) -> int:
    """Enumerate all hop-constrained s-t paths via DFS on ``index``.

    Returns the number of results emitted.  Deadline expiry and result
    limits propagate as :class:`EnumerationTimeout` / ``ResultLimitReached``
    and are handled by the caller (the engine), so this function stays close
    to the paper's pseudocode.
    """
    stats = stats if stats is not None else EnumerationStats()
    query = index.query
    s, t, k = query.source, query.target, query.k
    if index.is_empty:
        return 0

    vertex_of, row_of, row_neighbors, row_offsets = index.flat_adjacency()
    t_row = int(row_of[t])

    path = [s]
    on_rows = {int(row_of[s])}
    initial_state = None if constraint is None else constraint.initial_state()
    reject = None if constraint is None else constraint.REJECT

    def search(row: int, state) -> int:
        """Recursive Search procedure; returns the results in this subtree."""
        if row == t_row:
            if deadline is not None:
                deadline.check()
            if constraint is None or constraint.accepts(state):
                collector.emit(path)
                return 1
            return 0

        budget = k - len(path)
        # The candidate count comes straight off the offset table — the
        # slice below exists only for iteration, never to be measured (and
        # is thus charged exactly once per node, not re-read on backtrack).
        width = row_offsets[row][budget]
        stats.edges_accessed += width
        if deadline is not None:
            # One amortised poll per node, charging the edges it scans.
            deadline.check_every(width + 1)
        found = 0
        for next_row in row_neighbors[row][:width]:
            if next_row in on_rows:
                continue
            v_next = vertex_of[next_row]
            if constraint is not None:
                next_state = constraint.transition(state, path[-1], v_next)
                if next_state is reject:
                    continue
            else:
                next_state = None
            stats.partial_results_generated += 1
            path.append(v_next)
            on_rows.add(next_row)
            try:
                sub_found = search(next_row, next_state)
            finally:
                path.pop()
                on_rows.discard(next_row)
            if sub_found == 0:
                stats.invalid_partial_results += 1
            found += sub_found
        return found

    emitted = search(int(row_of[s]), initial_state)
    stats.results_emitted += emitted
    return emitted
