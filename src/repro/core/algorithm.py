"""Common interface implemented by every enumeration algorithm.

The benchmark harness treats PathEnum, its two fixed-plan variants and all
baselines uniformly: each is an :class:`Algorithm` whose :meth:`Algorithm.run`
evaluates one query under a :class:`~repro.core.listener.RunConfig` and
returns a :class:`~repro.core.result.QueryResult` with fully populated
statistics — even when the run timed out or was truncated by a result limit.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Optional

from repro.errors import EnumerationTimeout, ResultLimitReached
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph

__all__ = ["Algorithm", "DelayedAlgorithm", "timed_run"]


class Algorithm(ABC):
    """Base class for HcPE enumeration algorithms."""

    #: Human-readable name used in benchmark tables (e.g. ``"IDX-DFS"``).
    name: str = "algorithm"

    @abstractmethod
    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        """Evaluate ``query`` on ``graph`` and return the result."""

    def count(self, graph: DiGraph, query: Query, **config_kwargs) -> int:
        """Convenience: number of result paths without storing them."""
        config = RunConfig(store_paths=False, **config_kwargs)
        return self.run(graph, query, config).count

    def paths(self, graph: DiGraph, query: Query, **config_kwargs):
        """Convenience: the list of result paths."""
        config = RunConfig(store_paths=True, **config_kwargs)
        return self.run(graph, query, config).paths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class DelayedAlgorithm(Algorithm):
    """An algorithm wrapper adding a fixed per-query service delay.

    The results are exactly the inner algorithm's — only wall time changes —
    so equivalence checks hold across delayed and undelayed deployments.
    Exists for capacity experiments: ``repro serve --delay-ms`` gives every
    shard host a known service time, which turns open-loop throughput into
    a controlled function of host count instead of a property of whatever
    CPU the benchmark happens to run on.  Picklable whenever the inner
    algorithm is, so it rides the process backend too.
    """

    def __init__(self, inner: Algorithm, delay_seconds: float) -> None:
        if delay_seconds < 0.0:
            raise ValueError("delay_seconds must be non-negative")
        self.inner = inner
        self.delay_seconds = float(delay_seconds)
        self.name = inner.name

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        time.sleep(self.delay_seconds)
        return self.inner.run(graph, query, config)


def timed_run(
    algorithm_name: str,
    query: Query,
    config: RunConfig,
    body,
) -> QueryResult:
    """Execute ``body(collector, deadline, stats)`` with uniform bookkeeping.

    ``body`` performs the algorithm-specific work and returns nothing; this
    wrapper handles the shared concerns — total timing, deadline expiry,
    result limits — so that every algorithm reports timeouts and truncation
    identically, the way the paper's harness treats the two-minute cap.
    """
    stats = EnumerationStats()
    collector = config.make_collector()
    deadline = config.make_deadline()
    collector.restart_clock()
    started = time.perf_counter()
    try:
        body(collector, deadline, stats)
    except EnumerationTimeout:
        stats.timed_out = True
    except ResultLimitReached:
        stats.truncated = True
    stats.add_phase(Phase.TOTAL, time.perf_counter() - started)
    stats.results_emitted = collector.count
    return QueryResult(
        source=query.source,
        target=query.target,
        k=query.k,
        algorithm=algorithm_name,
        count=collector.count,
        paths=collector.stored_paths(),
        stats=stats,
        response_seconds=collector.response_seconds,
        response_k=collector.response_k,
    )
