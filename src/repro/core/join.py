"""Join-based enumeration on the light-weight index (Algorithm 6, IDX-JOIN).

The query ``Q`` is cut at position ``i*``:

* the *left* sub-query ``Q[0:i*]`` is evaluated with a DFS from ``s`` that
  produces walks of exactly ``i*`` edges (the target's self-loop pads walks
  that reach ``t`` early);
* the *right* sub-query ``Q[i*:k]`` is evaluated with a DFS from every cut
  vertex (the distinct last vertices of the left tuples), producing walks of
  exactly ``k - i*`` edges that necessarily end at ``t``;
* a hash join on the shared cut attribute combines the two sides, and every
  joined tuple is converted back into a simple path (trailing ``t`` padding
  stripped, duplicate vertices rejected) before being emitted.

Like the index DFS, the sub-query evaluation walks the index's flat CSR
mirrors directly (row-indexed array slices, no per-step hash lookups).
Partial results are materialised, so the peak tuple counts feeding the
paper's memory experiment (Table 7) are tracked here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.constraints import PathConstraint
from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector
from repro.core.result import EnumerationStats

__all__ = ["run_idx_join", "evaluate_subquery"]

Walk = Tuple[int, ...]


def run_idx_join(
    index: LightWeightIndex,
    cut_position: int,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
    constraint: Optional[PathConstraint] = None,
) -> int:
    """Enumerate all hop-constrained s-t paths by joining two sub-queries.

    ``cut_position`` must satisfy ``1 <= cut_position <= k - 1``; it is
    normally produced by the join-order optimizer (Algorithm 5).
    """
    stats = stats if stats is not None else EnumerationStats()
    query = index.query
    s, t, k = query.source, query.target, query.k
    if not 1 <= cut_position <= k - 1:
        raise ValueError(f"cut position must lie in [1, {k - 1}], got {cut_position}")
    if index.is_empty:
        return 0
    stats.cut_position = cut_position

    # Left sub-query Q[0:i*]: walks from s with exactly i* edges.
    left = evaluate_subquery(
        index,
        start=s,
        offset=0,
        length=cut_position,
        deadline=deadline,
        stats=stats,
    )

    # Right sub-query Q[i*:k]: walks from each cut vertex with k - i* edges.
    cut_vertices = {walk[-1] for walk in left}
    right: List[Walk] = []
    for v in sorted(cut_vertices):
        right.extend(
            evaluate_subquery(
                index,
                start=v,
                offset=cut_position,
                length=k - cut_position,
                deadline=deadline,
                stats=stats,
            )
        )

    peak_tuples = len(left) + len(right)
    stats.peak_partial_result_tuples = max(stats.peak_partial_result_tuples, peak_tuples)
    stats.peak_partial_result_bytes = max(
        stats.peak_partial_result_bytes,
        8 * (len(left) * (cut_position + 1) + len(right) * (k - cut_position + 1)),
    )

    # Hash join on the cut vertex, followed by the path-validity filter.
    right_by_head: Dict[int, List[Walk]] = {}
    for walk in right:
        right_by_head.setdefault(walk[0], []).append(walk)

    emitted = 0
    used_right: set = set()
    for left_walk in left:
        if deadline is not None:
            deadline.check()
        matches = right_by_head.get(left_walk[-1], ())
        produced_from_left = 0
        for right_walk in matches:
            full = left_walk + right_walk[1:]
            path = _tuple_to_path(full, t)
            if path is None:
                continue
            if constraint is not None and not constraint.accepts_path(path):
                continue
            collector.emit(path)
            emitted += 1
            produced_from_left += 1
            used_right.add(right_walk)
        if produced_from_left == 0:
            stats.invalid_partial_results += 1
    stats.invalid_partial_results += len(right) - len(used_right)
    stats.results_emitted += emitted
    return emitted


def evaluate_subquery(
    index: LightWeightIndex,
    *,
    start: int,
    offset: int,
    length: int,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> List[Walk]:
    """Evaluate the sub-query ``Q[offset : offset + length]`` from ``start``.

    Returns the list of walks with exactly ``length`` edges (``length + 1``
    vertices).  The per-step budget mirrors the Search procedure of
    Algorithm 6: after ``L(M)`` edges the next vertex must lie within
    ``k - offset - L(M) - 1`` hops of ``t``.
    """
    stats = stats if stats is not None else EnumerationStats()
    k = index.k
    vertex_of, row_of, row_neighbors, row_offsets = index.flat_adjacency()
    start_row = int(row_of[start]) if 0 <= start < len(row_of) else -1
    if start_row < 0:
        # A start outside the index has no stored neighbours; only the
        # zero-length walk survives (matching the dict-era semantics).
        return [(start,)] if length == 0 else []
    results: List[Walk] = []
    walk = [start]

    def extend(row: int) -> None:
        if len(walk) == length + 1:
            if deadline is not None:
                deadline.check()
            results.append(tuple(walk))
            return
        budget = k - offset - len(walk)
        if budget < 0:
            # Out-of-range sub-chains (offset + length > k) have no
            # candidates; without this guard the negative index would wrap
            # to the budget-k offset column.
            if deadline is not None:
                deadline.check()
            return
        # Charge the candidate count straight off the offset table; the
        # slice below exists only for iteration, so the count is never paid
        # for twice.  The deadline poll is amortised over the scanned edges.
        width = row_offsets[row][budget]
        stats.edges_accessed += width
        if deadline is not None:
            deadline.check_every(width + 1)
        for next_row in row_neighbors[row][:width]:
            stats.partial_results_generated += 1
            walk.append(vertex_of[next_row])
            try:
                extend(next_row)
            finally:
                walk.pop()

    extend(start_row)
    return results


def _tuple_to_path(vertices: Walk, target: int) -> Optional[Walk]:
    """Convert a padded join tuple into a simple path, or ``None`` if invalid.

    The tuple ends with one or more copies of ``target`` (the self-loop
    padding of the join model).  The path is the prefix up to the first
    occurrence of ``target``; it is valid when all of its vertices are
    distinct (Theorem 3.1).
    """
    try:
        first_target = vertices.index(target)
    except ValueError:
        return None
    path = vertices[: first_target + 1]
    if len(set(path)) != len(path):
        return None
    return path
