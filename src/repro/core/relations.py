"""The join-based model: chain-join relations and the full reducer (Section 3.1, Algorithm 2).

A HcPE query ``q(s, t, k)`` is modelled as the chain join

``Q = R_1(u_0, u_1) ⋈ R_2(u_1, u_2) ⋈ ... ⋈ R_k(u_{k-1}, u_k)``

whose relations are derived from the edge list:

1. ``R_1`` contains the out-edges of ``s``; ``R_k`` contains the in-edges of
   ``t`` that do not start at ``s``.
2. Interior relations contain every edge that neither starts at ``s``/``t``
   nor ends at... (formally ``E(G - {s})`` minus edges leaving ``t``).
3. Every relation except ``R_1`` additionally contains the padding tuple
   ``(t, t)`` so that paths shorter than ``k`` survive the join (Theorem 3.1).

Algorithm 2 then removes dangling tuples with a classical full reducer: a
forward semi-join sweep followed by a backward sweep.  PathEnum replaces
this relatively expensive construction with the light-weight index, but the
relations remain useful as a baseline (:mod:`repro.baselines.full_join`) and
for the pruning-power comparison of Appendix B, which the test-suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.listener import Deadline
from repro.core.query import Query
from repro.graph.digraph import DiGraph

__all__ = ["Relation", "ChainRelations", "build_relations"]

EdgeTuple = Tuple[int, int]


@dataclass
class Relation:
    """One binary relation ``R_i(u_{i-1}, u_i)`` of the chain join."""

    #: 1-based position of the relation in the chain.
    position: int
    #: The tuples of the relation (directed edges, plus the (t, t) padding).
    tuples: Set[EdgeTuple]

    def sources(self) -> Set[int]:
        """Distinct values of the left attribute ``u_{i-1}``."""
        return {u for u, _ in self.tuples}

    def targets(self) -> Set[int]:
        """Distinct values of the right attribute ``u_i``."""
        return {v for _, v in self.tuples}

    def adjacency(self) -> Dict[int, List[int]]:
        """Group the tuples by source vertex for DFS-style evaluation."""
        grouped: Dict[int, List[int]] = {}
        for u, v in self.tuples:
            grouped.setdefault(u, []).append(v)
        return grouped

    def __len__(self) -> int:
        return len(self.tuples)


@dataclass
class ChainRelations:
    """The k relations of the chain join together with the query."""

    query: Query
    relations: List[Relation]

    def __len__(self) -> int:
        return len(self.relations)

    def __getitem__(self, position: int) -> Relation:
        """1-based access mirroring the paper's ``R_i`` notation."""
        if not 1 <= position <= len(self.relations):
            raise IndexError(f"relation index must lie in [1, {len(self.relations)}]")
        return self.relations[position - 1]

    def total_tuples(self) -> int:
        """Total number of tuples over all relations (the reducer's footprint)."""
        return sum(len(r) for r in self.relations)

    def neighbors_at(self, position: int, vertex: int) -> List[int]:
        """Values ``v`` with ``(vertex, v)`` in ``R_position`` (used by FullJoin)."""
        return [v for (u, v) in self[position].tuples if u == vertex]


def build_relations(
    graph: DiGraph,
    query: Query,
    *,
    apply_full_reducer: bool = True,
    deadline: Optional[Deadline] = None,
) -> ChainRelations:
    """Build the chain-join relations of ``query`` (Algorithm 2).

    With ``apply_full_reducer=False`` the raw relations of Section 3.1 are
    returned, which is what the dangling-tuple-elimination tests compare
    against.
    """
    query.validate(graph)
    s, t, k = query.source, query.target, query.k

    relations: List[Set[EdgeTuple]] = []
    # R_1: edges leaving s.
    r1 = {(s, int(v)) for v in graph.neighbors(s)}
    relations.append(r1)
    # Interior relations: edges of G - {s} that do not leave t, plus (t, t).
    if k > 2:
        interior = set()
        for u in graph.vertices():
            if u == s or u == t:
                continue
            for v in graph.neighbors(u):
                v = int(v)
                if v == s:
                    continue
                interior.add((u, v))
        interior_with_padding = set(interior)
        interior_with_padding.add((t, t))
        for _ in range(2, k):
            relations.append(set(interior_with_padding))
    # R_k: edges entering t that do not start at s, plus (t, t).
    rk = {(int(u), t) for u in graph.in_neighbors(t) if int(u) != s}
    rk.add((t, t))
    relations.append(rk)

    if apply_full_reducer:
        _full_reducer(relations, deadline=deadline)

    return ChainRelations(
        query=query,
        relations=[Relation(position=i + 1, tuples=r) for i, r in enumerate(relations)],
    )


def _full_reducer(relations: List[Set[EdgeTuple]], *, deadline: Optional[Deadline] = None) -> None:
    """Remove dangling tuples with forward and backward semi-join sweeps."""
    k = len(relations)
    # Forward sweep (Lines 5-8): R_{i+1} keeps tuples whose source appears
    # among the targets of R_i.
    for i in range(k - 1):
        if deadline is not None:
            deadline.check()
        reachable = {v for _, v in relations[i]}
        relations[i + 1] = {(u, v) for (u, v) in relations[i + 1] if u in reachable}
    # Backward sweep (Lines 9-12): R_i keeps tuples whose target appears
    # among the sources of R_{i+1}.
    for i in range(k - 2, -1, -1):
        if deadline is not None:
            deadline.check()
        alive = {u for u, _ in relations[i + 1]}
        relations[i] = {(u, v) for (u, v) in relations[i] if v in alive}
