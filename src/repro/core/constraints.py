"""Constraint extensions for HcPE queries (Appendix E of the paper).

Three kinds of constraints are supported, matching the paper's motivating
applications:

* :class:`PredicateConstraint` — every edge of a result path must satisfy a
  user predicate (e.g. "only high-value transactions").  Applied while the
  index is built, so constrained queries get *more* pruning, not less.
* :class:`AccumulativeConstraint` — a commutative/associative binary
  operation folds a per-edge value along the path and the final value must
  satisfy an acceptance predicate (Algorithm 7), e.g. "total risk above a
  threshold".  An optional monotone pruning bound cuts branches early.
* :class:`AutomatonConstraint` — edge labels must spell a word accepted by a
  finite automaton (Algorithm 8), e.g. the action sequence
  ``write -> mention`` in knowledge-graph completion.

All three implement the small :class:`PathConstraint` protocol used by the
DFS enumerator; the join enumerator applies :meth:`PathConstraint.accepts_path`
to each final result instead, as described in Appendix E.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional, Sequence, Tuple

from repro.errors import ConstraintError
from repro.graph.digraph import DiGraph

__all__ = [
    "PathConstraint",
    "PredicateConstraint",
    "AccumulativeConstraint",
    "AutomatonConstraint",
    "SequenceAutomaton",
]


class PathConstraint:
    """Protocol for per-path constraints carried through the DFS.

    Subclasses provide an initial state, a transition applied for every edge
    added to the partial result, an acceptance test applied when the partial
    result reaches ``t`` and a whole-path re-check used by join-based
    enumeration.  The sentinel :data:`REJECT` returned from ``transition``
    prunes the branch immediately.
    """

    #: Sentinel returned by ``transition`` to prune the current branch.
    REJECT = object()

    def initial_state(self):
        """State attached to the partial result ``(s)``."""
        raise NotImplementedError

    def transition(self, state, source: int, target: int):
        """State after appending edge ``(source, target)``, or :data:`REJECT`."""
        raise NotImplementedError

    def accepts(self, state) -> bool:
        """Whether a complete path with final ``state`` satisfies the constraint."""
        raise NotImplementedError

    def accepts_path(self, path: Sequence[int]) -> bool:
        """Re-evaluate the constraint on a complete path (join-based plans)."""
        state = self.initial_state()
        for source, target in zip(path, path[1:]):
            state = self.transition(state, source, target)
            if state is PathConstraint.REJECT:
                return False
        return self.accepts(state)

    def edge_filter(self) -> Optional[Callable[[int, int], bool]]:
        """Edge filter applied during index construction, if any."""
        return None


class PredicateConstraint(PathConstraint):
    """Every edge of the path must satisfy ``predicate(u, v, weight, label)``.

    The constraint is enforced during index construction (the filtered edges
    never enter the index) which is how the paper integrates predicates
    without materialising a subgraph.
    """

    def __init__(self, predicate: Callable[[int, int, float, Optional[str]], bool], graph: DiGraph):
        if not callable(predicate):
            raise ConstraintError("predicate must be callable")
        self._predicate = predicate
        self._graph = graph

    def initial_state(self):
        return None

    def transition(self, state, source: int, target: int):
        # Index construction already filtered edges; re-check defensively so
        # the constraint also works when applied to an unfiltered algorithm.
        weight = self._graph.edge_weight(source, target, default=1.0)
        label = self._graph.edge_label(source, target, default=None)
        if self._predicate(source, target, weight, label):
            return None
        return PathConstraint.REJECT

    def accepts(self, state) -> bool:
        return True

    def edge_filter(self) -> Callable[[int, int], bool]:
        graph = self._graph
        predicate = self._predicate

        def _filter(u: int, v: int) -> bool:
            return predicate(u, v, graph.edge_weight(u, v, default=1.0), graph.edge_label(u, v, default=None))

        return _filter


class AccumulativeConstraint(PathConstraint):
    """Fold a per-edge value along the path and test the total (Algorithm 7).

    Parameters
    ----------
    graph:
        Graph whose edge weights provide the per-edge values (unless
        ``edge_value`` overrides them).
    accept:
        Predicate on the accumulated value evaluated at the target.
    operation:
        Commutative/associative binary operation; defaults to addition.
    initial:
        Identity element of ``operation``; defaults to 0.0.
    edge_value:
        Optional ``f(u, v) -> float`` overriding the edge weight.
    upper_bound_prune:
        When set, branches whose accumulated value already exceeds this bound
        are pruned (sound only for non-negative edge values and monotone
        operations, as discussed in Appendix E).
    """

    def __init__(
        self,
        graph: DiGraph,
        accept: Callable[[float], bool],
        *,
        operation: Callable[[float, float], float] = lambda a, b: a + b,
        initial: float = 0.0,
        edge_value: Optional[Callable[[int, int], float]] = None,
        upper_bound_prune: Optional[float] = None,
    ) -> None:
        if not callable(accept):
            raise ConstraintError("accept must be callable")
        self._graph = graph
        self._accept = accept
        self._operation = operation
        self._initial = initial
        self._edge_value = edge_value
        self._upper_bound = upper_bound_prune

    def initial_state(self) -> float:
        return self._initial

    def transition(self, state: float, source: int, target: int):
        value = (
            self._edge_value(source, target)
            if self._edge_value is not None
            else self._graph.edge_weight(source, target, default=1.0)
        )
        accumulated = self._operation(state, value)
        if self._upper_bound is not None and accumulated > self._upper_bound:
            return PathConstraint.REJECT
        return accumulated

    def accepts(self, state: float) -> bool:
        return bool(self._accept(state))


class SequenceAutomaton:
    """Deterministic finite automaton over edge labels.

    The transition table maps ``(state, label) -> state``.  Missing entries
    reject.  :meth:`from_label_sequence` builds the automaton accepting
    exactly the given label sequence, optionally as a subsequence pattern in
    which unrelated labels are allowed in between.
    """

    def __init__(
        self,
        start: Hashable,
        accepting: Iterable[Hashable],
        transitions: Dict[Tuple[Hashable, str], Hashable],
    ) -> None:
        self.start = start
        self.accepting = frozenset(accepting)
        self.transitions = dict(transitions)
        if not self.transitions and not self.accepting:
            raise ConstraintError("automaton must have at least one accepting state")

    def step(self, state: Hashable, label: Optional[str]) -> Optional[Hashable]:
        """Next state or ``None`` when the label is not accepted from ``state``."""
        if label is None:
            return None
        return self.transitions.get((state, label))

    def is_accepting(self, state: Hashable) -> bool:
        """Whether ``state`` is an accepting state."""
        return state in self.accepting

    @classmethod
    def from_label_sequence(
        cls, labels: Sequence[str], *, allow_gaps: bool = False
    ) -> "SequenceAutomaton":
        """Automaton accepting paths whose labels spell ``labels`` in order.

        With ``allow_gaps`` the required labels may be interleaved with other
        labels (a subsequence match); otherwise the path labels must equal the
        sequence exactly.
        """
        if not labels:
            raise ConstraintError("label sequence must not be empty")
        transitions: Dict[Tuple[Hashable, str], Hashable] = {}
        for i, label in enumerate(labels):
            transitions[(i, label)] = i + 1
        if allow_gaps:
            alphabet = set(labels)
            for i in range(len(labels) + 1):
                for label in alphabet:
                    transitions.setdefault((i, label), i)
            # Gap transitions for labels outside the alphabet are handled by
            # ``step`` returning the same state via the wildcard below.
            automaton = cls(0, {len(labels)}, transitions)
            automaton._allow_gaps = True  # type: ignore[attr-defined]
            return automaton
        return cls(0, {len(labels)}, transitions)


class AutomatonConstraint(PathConstraint):
    """The label sequence of the path must be accepted by an automaton."""

    def __init__(self, graph: DiGraph, automaton: SequenceAutomaton) -> None:
        self._graph = graph
        self._automaton = automaton
        self._allow_gaps = bool(getattr(automaton, "_allow_gaps", False))

    def initial_state(self):
        return self._automaton.start

    def transition(self, state, source: int, target: int):
        label = self._graph.edge_label(source, target, default=None)
        next_state = self._automaton.step(state, label)
        if next_state is None:
            if self._allow_gaps:
                return state
            return PathConstraint.REJECT
        return next_state

    def accepts(self, state) -> bool:
        return self._automaton.is_accepting(state)
