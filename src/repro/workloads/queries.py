"""Query-set generation following Section 7.1 of the paper.

For each graph the paper builds four query sets of 1 000 queries each.  The
vertex set is split into ``V'`` (the top 10 % of vertices by degree) and
``V''`` (the rest); the four settings place ``s`` and ``t`` in
``{V', V''} x {V', V''}``.  Every query additionally requires
``S(s, t) <= 3`` so that at least one result exists — otherwise a single BFS
answers the query and the enumeration problem is trivial.  The hardest
setting, and the paper's default, draws both endpoints from ``V'``.
"""

from __future__ import annotations

import enum
import hashlib
import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.core.query import Query
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHABLE, distance

__all__ = [
    "QuerySetting",
    "QueryWorkload",
    "split_by_degree",
    "consistent_hash",
    "partition_by_target",
    "partition_by_shard",
    "poisson_arrival_times",
    "generate_query_set",
    "generate_target_centric_set",
    "generate_all_settings",
]


class QuerySetting(enum.Enum):
    """The four endpoint-placement settings of Section 7.1."""

    #: Both endpoints among the top-degree vertices (the paper's default).
    HIGH_HIGH = "V'xV'"
    #: Source high degree, target low degree.
    HIGH_LOW = "V'xV''"
    #: Source low degree, target high degree.
    LOW_HIGH = "V''xV'"
    #: Both endpoints among the low-degree vertices.
    LOW_LOW = "V''xV''"

    @property
    def source_high(self) -> bool:
        return self in (QuerySetting.HIGH_HIGH, QuerySetting.HIGH_LOW)

    @property
    def target_high(self) -> bool:
        return self in (QuerySetting.HIGH_HIGH, QuerySetting.LOW_HIGH)


@dataclass
class QueryWorkload:
    """A generated query set together with its provenance."""

    graph_name: str
    setting: QuerySetting
    k: int
    queries: List[Query] = field(default_factory=list)
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def with_k(self, k: int) -> "QueryWorkload":
        """The same endpoint pairs under a different hop constraint."""
        return QueryWorkload(
            graph_name=self.graph_name,
            setting=self.setting,
            k=k,
            queries=[q.with_k(k) for q in self.queries],
            seed=self.seed,
        )

    def subset(self, count: int) -> "QueryWorkload":
        """The first ``count`` queries (used to scale benchmarks down)."""
        return QueryWorkload(
            graph_name=self.graph_name,
            setting=self.setting,
            k=self.k,
            queries=list(self.queries[:count]),
            seed=self.seed,
        )

    def to_specs(self, **options) -> List["QuerySpec"]:
        """The workload as :class:`~repro.api.QuerySpec` objects.

        ``options`` (``limit``, ``deadline``, ``engine``, ``store_paths``,
        ...) apply to every spec, which also makes the list a valid single
        :meth:`~repro.api.Database.batch` argument — one batch must share
        its run options.
        """
        from repro.api import QuerySpec

        return [
            QuerySpec(query.source, query.target, query.k, **options)
            for query in self.queries
        ]

    def unique_targets(self) -> List[int]:
        """The distinct query targets, in first-appearance order.

        ``len(workload.unique_targets()) < len(workload)`` is exactly the
        condition under which batch execution saves reverse-BFS work.
        """
        seen: set = set()
        targets: List[int] = []
        for query in self.queries:
            if query.target not in seen:
                seen.add(query.target)
                targets.append(query.target)
        return targets


def consistent_hash(target, num_shards: int) -> int:
    """The shard owning ``target`` under rendezvous (HRW) consistent hashing.

    Deterministic across runs, processes and machines: the weight of each
    ``(target, shard)`` pair is the first 8 bytes of a BLAKE2b digest over a
    canonical byte encoding of the target id — never Python's seeded
    ``hash()``.  The highest-weight shard wins; ties (astronomically rare,
    but the contract matters) break toward the *lowest* shard index because
    the comparison is strict.

    Rendezvous hashing is what makes the mapping *consistent*: growing the
    fleet from ``n`` to ``n + 1`` shards only moves the ``1 / (n + 1)``
    fraction of targets whose new shard wins — every other target keeps its
    shard, and with it the reverse-BFS distance cache that shard has warmed.

    ``target`` may be an internal vertex id (int) or an external id (str);
    the two spaces are encoded distinctly so ``5`` and ``"5"`` hash
    independently.
    """
    if num_shards < 1:
        raise WorkloadError("num_shards must be positive")
    if num_shards == 1:
        return 0
    if isinstance(target, (int, np.integer)) and not isinstance(target, bool):
        key = b"i:%d" % int(target)
    else:
        key = b"s:" + str(target).encode("utf-8", errors="surrogatepass")
    best_shard, best_weight = 0, -1
    for shard in range(num_shards):
        digest = hashlib.blake2b(
            key + b"|%d" % shard, digest_size=8
        ).digest()
        weight = int.from_bytes(digest, "big")
        if weight > best_weight:
            best_shard, best_weight = shard, weight
    return best_shard


def partition_by_shard(
    queries: Sequence, num_shards: int
) -> List[List[Tuple[int, object]]]:
    """Partition ``queries`` across ``num_shards`` by target consistent hash.

    The routing-tier counterpart of :func:`partition_by_target`: instead of
    balancing load greedily across an ephemeral worker pool, every query is
    pinned to the shard :func:`consistent_hash` assigns its target — the
    property a distributed router needs so that the *same* shard host serves
    a target across batches, processes and router restarts (its distance
    cache stays hot, and no two shards ever own one target).

    Accepts :class:`~repro.core.query.Query` objects or ``(s, t, k)``
    triples.  Returns exactly ``num_shards`` lists of
    ``(original_position, query)`` pairs; unlike :func:`partition_by_target`
    empty shards are kept, so indexes align with the shard map.
    """
    if num_shards < 1:
        raise WorkloadError("num_shards must be positive")
    shards: List[List[Tuple[int, object]]] = [[] for _ in range(num_shards)]
    for position, query in enumerate(queries):
        target = query.target if hasattr(query, "target") else query[1]
        shards[consistent_hash(target, num_shards)].append((position, query))
    return shards


def partition_by_target(
    queries: Sequence[Query], num_shards: int
) -> List[List[Tuple[int, Query]]]:
    """Partition ``queries`` into at most ``num_shards`` target-affine shards.

    Every query with the same ``(target, k)`` — the distance-cache key of
    :class:`~repro.core.engine.QuerySession` — lands in the same shard, so a
    worker evaluating one shard owns all reuse opportunities of its targets
    and no reverse-BFS array is ever computed in two processes.  Groups are
    balanced greedily (largest group first onto the least-loaded shard,
    longest-processing-time heuristic), which keeps shard sizes even when a
    few hub targets dominate the workload.

    Returns non-empty shards of ``(original_position, query)`` pairs; the
    positions let the caller reassemble results in workload order.  The
    partition is deterministic for a given query sequence.
    """
    if num_shards < 1:
        raise WorkloadError("num_shards must be positive")
    groups: dict = {}
    for position, query in enumerate(queries):
        groups.setdefault((query.target, query.k), []).append((position, query))
    if not groups:
        return []
    # Largest group first; ties broken by first appearance for determinism.
    ordered = sorted(groups.values(), key=lambda group: (-len(group), group[0][0]))
    shard_count = min(num_shards, len(ordered))
    shards: List[List[Tuple[int, Query]]] = [[] for _ in range(shard_count)]
    heap = [(0, index) for index in range(shard_count)]
    heapq.heapify(heap)
    for group in ordered:
        load, index = heapq.heappop(heap)
        shards[index].extend(group)
        heapq.heappush(heap, (load + len(group), index))
    return [shard for shard in shards if shard]


def poisson_arrival_times(
    count: int, rate_per_second: float, *, seed: Optional[int] = None
) -> np.ndarray:
    """Deterministic open-loop arrival schedule: Poisson process offsets.

    Returns ``count`` monotonically increasing arrival times in seconds
    (offsets from the start of a load run), with exponentially distributed
    inter-arrival gaps of mean ``1 / rate_per_second`` drawn from a seeded
    :class:`numpy.random.Generator` — the same seed always produces the same
    schedule, so serving benchmarks are replayable.  The first arrival is at
    the first gap, not at zero (no thundering herd at t=0).
    """
    if count < 1:
        raise WorkloadError("count must be positive")
    if not rate_per_second > 0.0:
        raise WorkloadError("rate_per_second must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_per_second, size=count)
    return np.cumsum(gaps)


def split_by_degree(graph: DiGraph, *, top_fraction: float = 0.10) -> Tuple[np.ndarray, np.ndarray]:
    """Split vertices into ``V'`` (top ``top_fraction`` by degree) and ``V''``.

    The split uses total degree (in + out), breaking ties by vertex id so the
    result is deterministic.
    """
    if not 0.0 < top_fraction < 1.0:
        raise WorkloadError("top_fraction must lie strictly between 0 and 1")
    degrees = graph.out_degrees() + graph.in_degrees()
    order = np.lexsort((np.arange(graph.num_vertices), -degrees))
    cutoff = max(1, int(round(top_fraction * graph.num_vertices)))
    high = np.sort(order[:cutoff])
    low = np.sort(order[cutoff:])
    return high, low


def generate_query_set(
    graph: DiGraph,
    *,
    count: int,
    k: int,
    setting: QuerySetting = QuerySetting.HIGH_HIGH,
    max_distance: int = 3,
    seed: Optional[int] = None,
    graph_name: str = "graph",
    top_fraction: float = 0.10,
    max_attempts_factor: int = 200,
) -> QueryWorkload:
    """Generate ``count`` queries under the given setting (Section 7.1).

    Endpoints are drawn uniformly at random from their degree classes and a
    pair is kept only when ``S(s, t) <= max_distance`` (3 in the paper), so
    every generated query has at least one result for any ``k >= max_distance``.
    Raises :class:`WorkloadError` when the graph cannot supply enough pairs.
    """
    if count < 1:
        raise WorkloadError("count must be positive")
    rng = np.random.default_rng(seed)
    high, low = split_by_degree(graph, top_fraction=top_fraction)
    source_pool = high if setting.source_high else low
    target_pool = high if setting.target_high else low
    if len(source_pool) == 0 or len(target_pool) == 0:
        raise WorkloadError("degree split produced an empty vertex pool")

    queries: List[Query] = []
    seen: set = set()
    attempts = 0
    max_attempts = max_attempts_factor * count
    while len(queries) < count and attempts < max_attempts:
        attempts += 1
        s = int(rng.choice(source_pool))
        t = int(rng.choice(target_pool))
        if s == t or (s, t) in seen:
            continue
        d = distance(graph, s, t, cutoff=max_distance)
        if d == UNREACHABLE or d > max_distance:
            continue
        seen.add((s, t))
        queries.append(Query(s, t, k))
    if len(queries) < count:
        raise WorkloadError(
            f"could only generate {len(queries)} of {count} queries for setting "
            f"{setting.value} (graph too sparse or disconnected)"
        )
    return QueryWorkload(graph_name=graph_name, setting=setting, k=k, queries=queries, seed=seed)


def generate_target_centric_set(
    graph: DiGraph,
    *,
    count: int,
    k: int,
    num_targets: int = 4,
    setting: QuerySetting = QuerySetting.HIGH_HIGH,
    max_distance: int = 3,
    seed: Optional[int] = None,
    graph_name: str = "graph",
    top_fraction: float = 0.10,
    max_attempts_factor: int = 200,
) -> QueryWorkload:
    """Generate ``count`` queries concentrated on ``num_targets`` targets.

    This is the batch-friendly shape of real serving traffic (many sources
    probing the same hub accounts): sources are drawn per the ``setting``
    rules of Section 7.1, but targets rotate through a small pool, so
    ``count / num_targets`` queries share each reverse-BFS distance array.
    The usual ``S(s, t) <= max_distance`` guarantee still applies.
    """
    if count < 1:
        raise WorkloadError("count must be positive")
    if num_targets < 1:
        raise WorkloadError("num_targets must be positive")
    rng = np.random.default_rng(seed)
    high, low = split_by_degree(graph, top_fraction=top_fraction)
    source_pool = high if setting.source_high else low
    target_pool = high if setting.target_high else low
    if len(source_pool) == 0 or len(target_pool) == 0:
        raise WorkloadError("degree split produced an empty vertex pool")

    targets: List[int] = []
    attempts = 0
    max_attempts = max_attempts_factor * max(count, num_targets)
    # A target qualifies once one in-range source exists; drawing the pool
    # first keeps the per-target source sampling independent of pool order.
    while len(targets) < min(num_targets, len(target_pool)) and attempts < max_attempts:
        attempts += 1
        t = int(rng.choice(target_pool))
        if t in targets:
            continue
        s = int(rng.choice(source_pool))
        if s == t:
            continue
        d = distance(graph, s, t, cutoff=max_distance)
        if d == UNREACHABLE or d > max_distance:
            continue
        targets.append(t)
    if not targets:
        raise WorkloadError(
            "could not find any target with an in-range source "
            f"(setting {setting.value}, max_distance {max_distance})"
        )

    queries: List[Query] = []
    seen: set = set()
    attempts = 0
    while len(queries) < count and attempts < max_attempts:
        # Rotate by attempt, not by accepted query: a target whose in-range
        # sources are exhausted must not pin the loop while other targets
        # still have capacity.
        t = targets[attempts % len(targets)]
        attempts += 1
        s = int(rng.choice(source_pool))
        if s == t or (s, t) in seen:
            continue
        d = distance(graph, s, t, cutoff=max_distance)
        if d == UNREACHABLE or d > max_distance:
            continue
        seen.add((s, t))
        queries.append(Query(s, t, k))
    if len(queries) < count:
        raise WorkloadError(
            f"could only generate {len(queries)} of {count} target-centric queries "
            f"(graph too sparse around the {len(targets)} chosen targets)"
        )
    return QueryWorkload(graph_name=graph_name, setting=setting, k=k, queries=queries, seed=seed)


def generate_all_settings(
    graph: DiGraph,
    *,
    count: int,
    k: int,
    seed: Optional[int] = None,
    graph_name: str = "graph",
) -> List[QueryWorkload]:
    """Generate one workload per endpoint setting (the paper's four sets)."""
    workloads = []
    for offset, setting in enumerate(QuerySetting):
        workloads.append(
            generate_query_set(
                graph,
                count=count,
                k=k,
                setting=setting,
                seed=None if seed is None else seed + offset,
                graph_name=graph_name,
            )
        )
    return workloads
