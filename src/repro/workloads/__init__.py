"""Workloads: the datasets and query sets of the paper's evaluation.

* :mod:`repro.workloads.datasets` — a registry of fifteen synthetic graphs
  standing in for the real-world datasets of Table 2;
* :mod:`repro.workloads.queries` — query-set generation following Section
  7.1 (degree-based vertex split, four settings, distance(s, t) <= 3);
* :mod:`repro.workloads.dynamic` — the dynamic-graph workload of Figure 8
  (10 % held-out edges replayed as insertions, one cycle query each).
"""

from repro.workloads.datasets import (
    DEFAULT_REPRESENTATIVES,
    DatasetSpec,
    dataset_names,
    dataset_spec,
    load_dataset,
    registry,
)
from repro.workloads.dynamic import DynamicWorkload, build_dynamic_workload
from repro.workloads.queries import (
    QuerySetting,
    QueryWorkload,
    generate_query_set,
    poisson_arrival_times,
    split_by_degree,
)

__all__ = [
    "DatasetSpec",
    "registry",
    "dataset_names",
    "dataset_spec",
    "load_dataset",
    "DEFAULT_REPRESENTATIVES",
    "QuerySetting",
    "QueryWorkload",
    "generate_query_set",
    "poisson_arrival_times",
    "split_by_degree",
    "DynamicWorkload",
    "build_dynamic_workload",
]
