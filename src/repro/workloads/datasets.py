"""Synthetic stand-ins for the fifteen real-world datasets of Table 2.

The paper evaluates on graphs from SNAP and networkrepository.com that range
from thousands to billions of edges.  Those files cannot be downloaded in
this offline environment, so each dataset is replaced by a seeded synthetic
graph of the same *category* (citation / web / social / interaction /
recommendation / biological) with a matching average degree and degree
skew, scaled down so a laptop can sweep all benchmarks.  DESIGN.md documents
why this substitution preserves the paper's comparisons.

Each :class:`DatasetSpec` records the paper's original |V|, |E| and average
degree next to the generator parameters used here, so the Table 2 benchmark
can print both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    bipartite_graph,
    erdos_renyi,
    power_law_graph,
    small_world_graph,
)

__all__ = [
    "DatasetSpec",
    "registry",
    "dataset_names",
    "load_dataset",
    "dataset_spec",
    "DEFAULT_REPRESENTATIVES",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset of Table 2 and the synthetic generator standing in for it."""

    #: Short name used throughout the paper (``up``, ``ep``, ``gg``...).
    name: str
    #: Full dataset name from Table 2.
    full_name: str
    #: Category reported in Table 2.
    category: str
    #: The paper's vertex count (for reporting only).
    paper_vertices: int
    #: The paper's edge count (for reporting only).
    paper_edges: int
    #: The paper's average degree (for reporting only).
    paper_avg_degree: float
    #: Factory building the synthetic stand-in.
    factory: Callable[[], DiGraph]
    #: Rough difficulty class used to pick representative graphs in benchmarks.
    difficulty: str = "medium"


def _spec(
    name: str,
    full_name: str,
    category: str,
    paper_vertices: int,
    paper_edges: int,
    paper_avg_degree: float,
    factory: Callable[[], DiGraph],
    difficulty: str,
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        full_name=full_name,
        category=category,
        paper_vertices=paper_vertices,
        paper_edges=paper_edges,
        paper_avg_degree=paper_avg_degree,
        factory=factory,
        difficulty=difficulty,
    )


# --------------------------------------------------------------------- #
# The registry.  Sizes are scaled down ~1000x; average degrees and the
# degree-distribution class follow Table 2 so that query hardness ordering
# (e.g. `ep`, `ye`, `da` hard; `up`, `db` easy) is preserved.
# --------------------------------------------------------------------- #
_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    if spec.name in _REGISTRY:
        raise DatasetError(f"dataset {spec.name!r} registered twice")
    _REGISTRY[spec.name] = spec


_register(_spec(
    "up", "US Patents", "Citation", 4_000_000, 17_000_000, 8.8,
    lambda: erdos_renyi(4000, 4.5, seed=101), "easy",
))
_register(_spec(
    "db", "DBpedia", "Miscellaneous", 4_000_000, 14_000_000, 6.5,
    lambda: erdos_renyi(4000, 3.5, seed=102), "easy",
))
_register(_spec(
    "gg", "Web-google", "Web", 876_000, 5_000_000, 11.1,
    lambda: power_law_graph(2500, 5.5, exponent=2.4, seed=103), "easy",
))
_register(_spec(
    "st", "Web-stanford", "Web", 282_000, 2_300_000, 16.4,
    lambda: power_law_graph(2000, 8.0, exponent=2.3, seed=104), "medium",
))
_register(_spec(
    "tw", "Twitter-social", "Miscellaneous", 465_000, 835_000, 3.6,
    lambda: power_law_graph(3000, 1.8, exponent=2.1, seed=105), "easy",
))
_register(_spec(
    "bk", "Baidu-baike", "Web", 416_000, 3_000_000, 15.8,
    lambda: power_law_graph(2000, 7.5, exponent=2.2, seed=106), "medium",
))
_register(_spec(
    "tr", "Wiki-trust", "Interaction", 139_000, 740_000, 10.7,
    lambda: small_world_graph(1500, 5, rewire_probability=0.3, seed=107), "medium",
))
_register(_spec(
    "ep", "Soc-Epinions1", "Social", 75_000, 508_000, 13.4,
    lambda: power_law_graph(1200, 7.0, exponent=2.0, seed=108), "hard",
))
_register(_spec(
    "uk", "Web-uk-2005", "Web", 121_000, 334_000, 181.2,
    lambda: power_law_graph(600, 40.0, exponent=1.9, seed=109), "hard",
))
_register(_spec(
    "wt", "WikiTalk", "Miscellaneous", 2_000_000, 5_000_000, 4.2,
    lambda: power_law_graph(3000, 2.2, exponent=1.9, seed=110), "medium",
))
_register(_spec(
    "sl", "Soc-Slashdot0922", "Social", 82_000, 948_000, 21.2,
    lambda: power_law_graph(1000, 11.0, exponent=2.0, seed=111), "hard",
))
_register(_spec(
    "lj", "LiveJournal", "Social", 5_000_000, 69_000_000, 28.3,
    lambda: power_law_graph(1500, 14.0, exponent=2.1, seed=112), "hard",
))
_register(_spec(
    "da", "Rec-dating", "Recommendation", 169_000, 17_000_000, 205.7,
    lambda: bipartite_graph(220, 220, connection_probability=0.18, seed=113), "hard",
))
_register(_spec(
    "ye", "Bio-grid-yeast", "Biological", 6_000, 314_000, 104.5,
    lambda: erdos_renyi(400, 26.0, seed=114), "hard",
))
_register(_spec(
    "tm", "Twitter-mpi", "Miscellaneous", 52_000_000, 1_960_000_000, 74.7,
    lambda: power_law_graph(5000, 20.0, exponent=2.0, seed=115), "scalability",
))

#: Representative graphs used throughout Section 7: ``ep`` (long-running
#: queries) and ``gg`` (short-running queries).
DEFAULT_REPRESENTATIVES = ("ep", "gg")

_CACHE: Dict[str, DiGraph] = {}


def registry() -> Dict[str, DatasetSpec]:
    """The full dataset registry keyed by short name."""
    return dict(_REGISTRY)


def dataset_names(*, include_scalability: bool = True) -> List[str]:
    """Short names of all registered datasets, in Table 2 order."""
    names = list(_REGISTRY)
    if not include_scalability:
        names = [n for n in names if _REGISTRY[n].difficulty != "scalability"]
    return names


def load_dataset(name: str, *, use_cache: bool = True) -> DiGraph:
    """Build (or fetch from the in-process cache) the named synthetic dataset."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    if use_cache and name in _CACHE:
        return _CACHE[name]
    graph = spec.factory()
    if use_cache:
        _CACHE[name] = graph
    return graph


def dataset_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` registered under ``name``."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise DatasetError(f"unknown dataset {name!r}")
    return spec
