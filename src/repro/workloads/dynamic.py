"""The dynamic-graph workload of Figure 8.

Following the experiment of Section 7.2 (which itself follows [29]): 10 % of
a graph's edges are selected uniformly at random as *updates*; the remaining
90 % form the initial graph.  Each update ``e(v, v')`` is applied and the
hop-constrained query ``q(v', v, k - 1)`` is issued to enumerate the cycles
of length at most ``k`` that the new edge closes — the fraud-detection
pattern of the paper's second motivating application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.graph.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api import QuerySpec

__all__ = ["DynamicWorkload", "build_dynamic_workload"]


@dataclass
class DynamicWorkload:
    """An initial graph plus a stream of edge insertions with their queries."""

    #: The graph before any update is applied.
    initial_graph: DiGraph
    #: The held-out edges in replay order (internal ids of the *full* graph).
    updates: List[Tuple[int, int]] = field(default_factory=list)
    #: Hop constraint used for the per-update cycle queries.
    k: int = 6

    def __len__(self) -> int:
        return len(self.updates)

    def replay(self) -> Iterator[Tuple[DiGraph, Tuple[int, int], Optional["QuerySpec"]]]:
        """Yield ``(graph_after_update, inserted_edge, cycle_query)`` triples.

        The stream is replayed through the :mod:`repro.api` façade: a
        :class:`~repro.api.Database` is opened on the initial graph and each
        update is applied with :meth:`~repro.api.Database.insert_edges`, so
        every yielded graph is a published live epoch rather than an ad-hoc
        rebuild.  The query is a façade :class:`~repro.api.QuerySpec`
        enumerating paths from the head of the new edge back to its tail
        with ``k - 1`` hops, i.e. the cycles of length at most ``k`` through
        the new edge — pass it straight to ``Database.query``.  ``None`` is
        yielded when the query would be degenerate (``k - 1 < 2``).
        """
        from repro.api import Database, QuerySpec

        database = Database(self.initial_graph)
        try:
            for u, v in self.updates:
                database.insert_edges([(u, v)])
                snapshot = database.graph
                query: Optional[QuerySpec] = None
                if self.k - 1 >= 2:
                    query = QuerySpec(
                        snapshot.to_internal(v), snapshot.to_internal(u), self.k - 1
                    )
                yield snapshot, (u, v), query
        finally:
            database.close()


def build_dynamic_workload(
    graph: DiGraph,
    *,
    update_fraction: float = 0.10,
    k: int = 6,
    max_updates: Optional[int] = None,
    seed: Optional[int] = None,
) -> DynamicWorkload:
    """Hold out ``update_fraction`` of the edges of ``graph`` as insertions.

    The initial graph keeps the full vertex set (so vertex ids remain stable
    across snapshots) and the remaining edges; held-out edges are returned in
    a random replay order.
    """
    if not 0.0 < update_fraction < 1.0:
        raise WorkloadError("update_fraction must lie strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    edges = list(graph.edges())
    if len(edges) < 10:
        raise WorkloadError("graph is too small for a dynamic workload")
    num_updates = max(1, int(round(update_fraction * len(edges))))
    order = rng.permutation(len(edges))
    held_out_positions = set(int(i) for i in order[:num_updates])

    from repro.graph.builder import GraphBuilder

    builder = GraphBuilder()
    for v in graph.vertices():
        builder.add_vertex(v)
    updates: List[Tuple[int, int]] = []
    for position, (u, v) in enumerate(edges):
        if position in held_out_positions:
            updates.append((u, v))
        else:
            builder.add_edge(u, v)
    rng.shuffle(updates)  # type: ignore[arg-type]
    if max_updates is not None:
        updates = updates[:max_updates]
    return DynamicWorkload(initial_graph=builder.build(), updates=updates, k=k)
