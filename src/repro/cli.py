"""Command-line interface: ``repro`` / ``pathenum`` (or ``python -m repro``).

Sub-commands
------------

``query``
    Evaluate a single HcPE query on an edge-list file or a named synthetic
    dataset and print the paths (or just the count).

``batch-query``
    Evaluate a whole query set as one unit through the batch execution
    engine (shared reverse-BFS distances, optional thread pool) and print
    per-query counts plus the batch cache statistics.

``datasets``
    List the synthetic dataset registry with Table 2 style properties.

``info``
    Print a graph's size, storage backend and per-array memory footprint —
    for snapshots also resident vs. mapped bytes, bytes/edge and the
    compression ratio of each storage backend.

``convert``
    Convert any graph source (edge list, ``.npz``, snapshot, dataset) into
    a page-aligned binary snapshot — raw (memory-mappable) or compressed
    (gap/varint block-coded neighbour lists) — for millisecond cold starts.

``bench``
    Run the overall comparison (a Table 3 row) on one dataset and print the
    aggregated metrics; ``--batch`` routes every algorithm through the
    batch executor instead of one-at-a-time runs.

``serve``
    Boot the asyncio query service on a TCP port: a persistent worker pool
    (threads, or processes over a shared-memory graph image) streaming
    per-query result frames over the length-prefixed JSON protocol of
    :mod:`repro.server.protocol`.  Runs until SIGINT/SIGTERM.

``route``
    Boot the distributed shard router: a graph-free front end that
    consistent-hashes queries by target across a fleet of ``repro serve``
    shard hosts (``--shard`` entries or a ``--shard-map`` file), merges the
    per-shard result streams back into workload order, and layers replica
    failover plus hedged requests on top.  Speaks the same wire protocol as
    ``serve``, so every client works against it unchanged.

``client``
    Scripted load against a running server *or router*: submit one workload
    and print the streamed results, drive an open-loop Poisson arrival
    process (``--rate``/``--connections``) and print the latency
    percentiles, or fetch server statistics (``--server-stats`` — for a
    router this includes the per-shard health probe).

Both ``batch-query`` and ``bench`` accept ``--processes`` (and ``--shards``)
to fan the batch out over target-sharded worker processes attached to a
shared-memory copy of the graph; ``--workers`` keeps selecting the in-process
thread pool.

Every execution command routes through the :class:`repro.api.Database`
façade — the flags select its backend (``inline`` / ``threads`` /
``processes`` locally, ``remote`` for ``client``), so the CLI exercises
exactly the code paths library users get.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import Database, Q
from repro.baselines.registry import PAPER_ALGORITHMS, available_algorithms, get_algorithm
from repro.bench.comparison import overall_comparison
from repro.bench.reporting import format_table
from repro.bench.runner import BenchmarkSettings
from repro.core.listener import ENGINE_CHOICES
from repro.errors import VertexNotFoundError
from repro.core.query import Query
from repro.graph.io import _load_npz, read_edge_list
from repro.graph.snapshot import load_snapshot, save_snapshot, snapshot_codec
from repro.server.protocol import DEFAULT_PORT as SERVE_DEFAULT_PORT
from repro.server.protocol import DEFAULT_ROUTER_PORT as ROUTE_DEFAULT_PORT
from repro.graph.properties import summarize
from repro.workloads.datasets import dataset_names, load_dataset, registry
from repro.workloads.queries import (
    QuerySetting,
    generate_query_set,
    generate_target_centric_set,
)

__all__ = ["main", "build_parser"]

#: Snapshot storage backends selectable from the command line.
STORE_CHOICES = ("auto", "mmap", "compressed", "heap", "shared_memory")


def _is_snapshot_file(path: str) -> bool:
    from repro.graph.snapshot import SNAPSHOT_MAGIC

    try:
        with open(path, "rb") as handle:
            return handle.read(len(SNAPSHOT_MAGIC)) == SNAPSHOT_MAGIC
    except OSError:
        return False


def _load_graph_source(source: str, *, store: str = "auto"):
    """Load a dataset name or a graph file of any supported format."""
    if source in dataset_names():
        return load_dataset(source)
    if _is_snapshot_file(source):
        return load_snapshot(source, store=store)
    if source.endswith(".npz"):
        return _load_npz(source)
    return read_edge_list(source)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pathenum",
        description="Hop-constrained s-t path enumeration (PathEnum, SIGMOD 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query_parser = subparsers.add_parser("query", help="evaluate a single HcPE query")
    source_group = query_parser.add_mutually_exclusive_group(required=True)
    source_group.add_argument("--edge-list", help="path to a SNAP-style edge list file")
    source_group.add_argument(
        "--dataset", choices=dataset_names(), help="name of a synthetic dataset"
    )
    query_parser.add_argument("--source", required=True, help="source vertex id")
    query_parser.add_argument("--target", required=True, help="target vertex id")
    query_parser.add_argument("-k", "--hops", type=int, required=True, help="hop constraint")
    query_parser.add_argument(
        "--algorithm",
        default="PathEnum",
        help=f"algorithm to use (default PathEnum; available: {', '.join(sorted(available_algorithms()))})",
    )
    query_parser.add_argument("--count-only", action="store_true", help="print only the count")
    query_parser.add_argument("--limit", type=int, default=None, help="stop after N results")
    query_parser.add_argument(
        "--time-limit", type=float, default=None, help="per-query time limit in seconds"
    )
    query_parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="auto",
        help="enumeration engine: vectorised/compiled native, iterative kernels or recursive reference",
    )

    batch_parser = subparsers.add_parser(
        "batch-query", help="evaluate a query set through the batch execution engine"
    )
    batch_source_group = batch_parser.add_mutually_exclusive_group(required=True)
    batch_source_group.add_argument("--edge-list", help="path to a SNAP-style edge list file")
    batch_source_group.add_argument(
        "--dataset", choices=dataset_names(), help="name of a synthetic dataset"
    )
    batch_parser.add_argument(
        "--pair",
        action="append",
        default=None,
        metavar="SOURCE,TARGET",
        help="explicit query endpoints (repeatable); omit to generate a workload",
    )
    batch_parser.add_argument("-k", "--hops", type=int, required=True, help="hop constraint")
    batch_parser.add_argument(
        "--queries", type=int, default=20, help="generated workload size (without --pair)"
    )
    batch_parser.add_argument(
        "--targets", type=int, default=4,
        help="distinct targets of the generated workload (repeated-target traffic shape)",
    )
    batch_parser.add_argument(
        "--algorithm", default="PathEnum",
        help="algorithm to use (default PathEnum)",
    )
    batch_parser.add_argument(
        "--workers", type=int, default=1, help="thread-pool size (1 = sequential)"
    )
    batch_parser.add_argument(
        "--processes", type=int, default=1,
        help="worker processes sharing the graph via shared memory (1 = in-process)",
    )
    batch_parser.add_argument(
        "--shards", type=int, default=None,
        help="target shards for --processes (default: one per process)",
    )
    batch_parser.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
        help="multiprocessing start method for --processes (default: fork if available)",
    )
    batch_parser.add_argument("--time-limit", type=float, default=None)
    batch_parser.add_argument("--limit", type=int, default=None, help="result cap per query")
    batch_parser.add_argument("--seed", type=int, default=0)
    batch_parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="auto",
        help="enumeration engine: vectorised/compiled native, iterative kernels or recursive reference",
    )

    datasets_parser = subparsers.add_parser("datasets", help="list the synthetic dataset registry")
    datasets_parser.add_argument(
        "--build", action="store_true", help="build each graph and report measured properties"
    )

    info_parser = subparsers.add_parser(
        "info", help="print size, backend and memory footprint of a graph"
    )
    info_parser.add_argument(
        "graph",
        help="a synthetic dataset name or a path to an edge-list / .npz / "
             "binary snapshot file",
    )
    info_parser.add_argument(
        "--store", choices=STORE_CHOICES, default="auto",
        help="storage backend to load a snapshot into (default: the zero-copy "
             "mapping matching the snapshot's codec)",
    )

    convert_parser = subparsers.add_parser(
        "convert",
        help="convert a graph source into a mappable binary snapshot",
    )
    convert_parser.add_argument(
        "source",
        help="a dataset name or a path to an edge-list / .npz / snapshot file",
    )
    convert_parser.add_argument("output", help="snapshot file to write")
    convert_parser.add_argument(
        "--codec", choices=("raw", "compressed"), default="raw",
        help="raw = flat arrays for mmap attach; compressed = gap/varint "
             "block-coded neighbour lists (smaller file and resident set)",
    )

    bench_parser = subparsers.add_parser("bench", help="run the overall comparison on one dataset")
    bench_parser.add_argument("--dataset", default="gg", choices=dataset_names())
    bench_parser.add_argument("-k", "--hops", type=int, default=4)
    bench_parser.add_argument("--queries", type=int, default=20, help="number of queries")
    bench_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=list(PAPER_ALGORITHMS),
        help="algorithms to compare",
    )
    bench_parser.add_argument("--time-limit", type=float, default=2.0)
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument(
        "--batch", action="store_true",
        help="route algorithms through the batch execution engine",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=1, help="batch thread-pool size (implies --batch)"
    )
    bench_parser.add_argument(
        "--processes", type=int, default=1,
        help="worker processes for batch execution (implies --batch)",
    )
    bench_parser.add_argument(
        "--shards", type=int, default=None,
        help="target shards for --processes (default: one per process)",
    )
    bench_parser.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
        help="multiprocessing start method for --processes (default: fork on Linux)",
    )
    bench_parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="auto",
        help="enumeration engine: vectorised/compiled native, iterative kernels or recursive reference",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the asyncio query service on a TCP port"
    )
    serve_source_group = serve_parser.add_mutually_exclusive_group(required=True)
    serve_source_group.add_argument("--edge-list", help="path to a SNAP-style edge list file")
    serve_source_group.add_argument(
        "--dataset", choices=dataset_names(), help="name of a synthetic dataset"
    )
    serve_source_group.add_argument(
        "--snapshot",
        help="path to a binary snapshot (`repro convert`): attaches in "
             "milliseconds and shares one page cache across replicas",
    )
    serve_parser.add_argument(
        "--store", choices=STORE_CHOICES, default="auto",
        help="storage backend for --snapshot (default: match the codec)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=None,
        help=f"TCP port (default {SERVE_DEFAULT_PORT}; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--algorithm", default="PathEnum", help="algorithm to serve (default PathEnum)"
    )
    serve_parser.add_argument(
        "--processes", type=int, default=1,
        help="worker processes over a shared-memory graph (1 = in-process threads)",
    )
    serve_parser.add_argument(
        "--threads", type=int, default=2,
        help="worker threads when --processes is 1",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=None,
        help="target shards per job (default: one per worker)",
    )
    serve_parser.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
        help="multiprocessing start method for --processes (default: fork on Linux)",
    )
    serve_parser.add_argument(
        "--shard-id", type=int, default=None,
        help="identity of this host in a routed deployment (reported in stats/pong)",
    )
    serve_parser.add_argument(
        "--delay-ms", type=float, default=0.0,
        help="fixed artificial service delay per query (capacity experiments)",
    )
    serve_parser.add_argument(
        "--max-pending-queries", type=int, default=None,
        help="admission budget: reject submits once this many queries are "
             "pending (overloaded frame with a retry-after hint)",
    )
    serve_parser.add_argument(
        "--max-queue-delay-ms", type=float, default=None,
        help="shed jobs that waited longer than this in the queue instead "
             "of running them late",
    )

    route_parser = subparsers.add_parser(
        "route", help="run the distributed shard router (holds no graph)"
    )
    route_source_group = route_parser.add_mutually_exclusive_group(required=True)
    route_source_group.add_argument(
        "--shard", action="append", metavar="HOST:PORT[,HOST:PORT...]",
        help="one shard's replica list (repeat once per shard, in shard order)",
    )
    route_source_group.add_argument(
        "--shard-map", help="path to a JSON shard-map file ({'shards': [...]})"
    )
    route_parser.add_argument("--host", default="127.0.0.1")
    route_parser.add_argument(
        "--port", type=int, default=None,
        help=f"TCP port (default {ROUTE_DEFAULT_PORT}; 0 picks a free port)",
    )
    route_parser.add_argument(
        "--no-hedge", action="store_true",
        help="disable hedged requests (duplicate straggling sub-batches)",
    )
    route_parser.add_argument(
        "--hedge-percentile", type=float, default=95.0,
        help="latency percentile of winning attempts that sets the hedge delay",
    )
    route_parser.add_argument(
        "--hedge-min-delay-ms", type=float, default=25.0,
        help="lower clamp of the hedge delay",
    )
    route_parser.add_argument(
        "--hedge-max-delay-ms", type=float, default=2000.0,
        help="upper clamp of the hedge delay",
    )
    route_parser.add_argument(
        "--max-attempts", type=int, default=4,
        help="replica attempts per shard sub-batch before the job fails",
    )
    route_parser.add_argument(
        "--connect-retries", type=int, default=2,
        help="redial attempts per shard connection (exponential backoff + jitter)",
    )
    route_parser.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failures that trip a replica's circuit breaker",
    )
    route_parser.add_argument(
        "--breaker-cooldown-ms", type=float, default=5000.0,
        help="how long a tripped breaker stays open before a half-open probe",
    )

    client_parser = subparsers.add_parser(
        "client", help="drive a running query server with a scripted workload"
    )
    client_parser.add_argument("--host", default="127.0.0.1")
    client_parser.add_argument("--port", type=int, default=SERVE_DEFAULT_PORT)
    client_parser.add_argument(
        "--server-stats", action="store_true",
        help="print the server's statistics snapshot and exit",
    )
    client_parser.add_argument(
        "--dataset", choices=dataset_names(), default=None,
        help="dataset to generate the workload from (must match the server's)",
    )
    client_parser.add_argument(
        "--pair", action="append", default=None, metavar="SOURCE,TARGET",
        help="explicit external-id query endpoints (repeatable); omit to generate",
    )
    client_parser.add_argument("-k", "--hops", type=int, default=4, help="hop constraint")
    client_parser.add_argument(
        "--queries", type=int, default=20, help="generated workload size (without --pair)"
    )
    client_parser.add_argument(
        "--targets", type=int, default=4,
        help="distinct targets of the generated workload",
    )
    client_parser.add_argument("--seed", type=int, default=0)
    client_parser.add_argument(
        "--rate", type=float, default=None,
        help="open-loop mode: offered load in queries/second (Poisson arrivals)",
    )
    client_parser.add_argument(
        "--connections", type=int, default=1,
        help="concurrent client connections in open-loop mode",
    )
    client_parser.add_argument("--limit", type=int, default=None, help="result cap per query")
    client_parser.add_argument("--time-limit", type=float, default=None)
    client_parser.add_argument(
        "--count-only", action="store_true", help="do not stream paths back"
    )
    client_parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="auto",
        help="enumeration engine applied server-side, exactly like a local run",
    )
    client_parser.add_argument(
        "--updates", type=int, default=None,
        help="live-update replay mode: remove and re-insert N edges sampled "
             "from --dataset through `update` frames (the server's graph "
             "ends unchanged) and report per-mutation latency",
    )
    client_parser.add_argument(
        "--update-seed", type=int, default=0,
        help="seed of the sampled update edges (default 0)",
    )
    return parser


def _command_query(args: argparse.Namespace) -> int:
    if args.edge_list:
        graph = read_edge_list(args.edge_list)
    else:
        graph = load_dataset(args.dataset)
    try:
        source = graph.to_internal(int(args.source))
        target = graph.to_internal(int(args.target))
    except (ValueError, KeyError):
        source = graph.to_internal(args.source)
        target = graph.to_internal(args.target)
    spec = (
        Q(source, target, args.hops)
        .limit(args.limit)
        .deadline(args.time_limit)
        .engine(args.engine)
        .store_paths(not args.count_only)
    )
    with Database(graph, algorithm=get_algorithm(args.algorithm)) as db:
        result = db.query(spec).result()
    print(f"algorithm: {result.algorithm}")
    print(f"query: q({args.source}, {args.target}, {args.hops})")
    print(f"paths: {result.count}")
    print(f"query time: {result.query_millis:.3f} ms")
    if result.stats.plan:
        print(f"plan: {result.stats.plan}")
    if not args.count_only and result.paths is not None:
        for path in result.paths:
            print(" -> ".join(str(graph.to_external(v)) for v in path))
    return 0


def _load_graph(args: argparse.Namespace):
    if getattr(args, "snapshot", None):
        return load_snapshot(args.snapshot, store=getattr(args, "store", "auto"))
    if args.edge_list:
        return read_edge_list(args.edge_list)
    return load_dataset(args.dataset)


def _split_pair(pair: str):
    """Split one ``--pair SOURCE,TARGET`` argument; raises ``ValueError``."""
    raw_source, raw_target = pair.split(",", 1)
    return raw_source.strip(), raw_target.strip()


def _command_batch_query(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.processes < 1:
        print("--processes must be at least 1", file=sys.stderr)
        return 2
    if args.processes > 1 and args.workers > 1:
        print("--workers and --processes are mutually exclusive", file=sys.stderr)
        return 2
    graph = _load_graph(args)
    if args.pair:
        queries = []
        for pair in args.pair:
            try:
                raw_source, raw_target = _split_pair(pair)
            except ValueError:
                print(f"invalid --pair {pair!r}: expected SOURCE,TARGET", file=sys.stderr)
                return 2
            queries.append(
                Query.from_external(
                    graph,
                    _coerce_vertex(graph, raw_source),
                    _coerce_vertex(graph, raw_target),
                    args.hops,
                )
            )
    else:
        workload = generate_target_centric_set(
            graph,
            count=args.queries,
            k=args.hops,
            num_targets=args.targets,
            seed=args.seed,
            graph_name=args.dataset or args.edge_list,
        )
        queries = list(workload)

    if args.processes > 1:
        backend, workers = "processes", args.processes
    elif args.workers > 1:
        backend, workers = "threads", args.workers
    else:
        backend, workers = "inline", None
    with Database(
        graph,
        backend=backend,
        algorithm=get_algorithm(args.algorithm),
        workers=workers,
        shards=args.shards,
        start_method=args.start_method,
    ) as db:
        stream = db.batch(
            queries,
            store_paths=False,
            limit=args.limit,
            deadline=args.time_limit,
            engine=args.engine,
        )
        results = stream.results()
        stats = stream.stats()
    rows = [
        {
            "source": graph.to_external(result.source),
            "target": graph.to_external(result.target),
            "k": result.k,
            "paths": result.count,
            "query_ms": round(result.query_millis, 3),
            "plan": result.stats.plan,
            "bfs_cached": result.stats.bfs_cache_hit,
        }
        for result in results
    ]
    print(format_table(rows, title=f"Batch of {len(queries)} queries ({args.algorithm})",
                       scientific=False))
    row = stats.as_row()
    throughput = stats.total_paths / stats.wall_seconds if stats.wall_seconds > 0 else 0.0
    print(f"total paths: {stats.total_paths}")
    print(f"batch wall time: {row['wall_ms']} ms "
          f"({throughput:.0f} paths/s)")
    print(
        f"reverse BFS runs: {row['reverse_bfs_runs']} for {row['queries']} queries "
        f"(cache hit rate {stats.hit_rate:.0%})"
    )
    return 0


def _coerce_vertex(graph, raw: str):
    """External vertex ids on the command line may be ints or strings."""
    try:
        candidate = int(raw)
    except ValueError:
        return raw
    try:
        graph.to_internal(candidate)
        return candidate
    except VertexNotFoundError:
        return raw


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in registry().items():
        row = {
            "name": name,
            "dataset": spec.full_name,
            "type": spec.category,
            "paper |V|": spec.paper_vertices,
            "paper |E|": spec.paper_edges,
            "paper d_avg": spec.paper_avg_degree,
        }
        if args.build:
            summary = summarize(load_dataset(name))
            row.update({"|V|": summary.num_vertices, "|E|": summary.num_edges,
                        "d_avg": round(summary.avg_degree, 1)})
        rows.append(row)
    print(format_table(rows, title="Synthetic dataset registry (Table 2 stand-ins)",
                       scientific=False))
    return 0


def _command_info(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.graph in dataset_names():
        graph = load_dataset(args.graph)
        origin = f"dataset {args.graph!r}"
    elif Path(args.graph).exists():
        graph = _load_graph_source(args.graph, store=args.store)
        origin = args.graph
        if _is_snapshot_file(args.graph):
            origin += f" (snapshot, codec={snapshot_codec(args.graph)})"
    else:
        print(
            f"unknown graph {args.graph!r}: not a dataset name "
            f"({', '.join(dataset_names())}) and not an existing file",
            file=sys.stderr,
        )
        return 2
    usage = graph.memory_usage()
    print(repr(graph))
    print(f"source: {origin}")
    summary = summarize(graph)
    print(format_table([summary.as_row()], title="Graph properties", scientific=False))
    num_edges = max(1, graph.num_edges)
    rows = [
        {"array": name, "bytes": nbytes, "bytes/edge": round(nbytes / num_edges, 2)}
        for name, nbytes in usage["arrays"].items()
    ]
    rows.append({
        "array": "total",
        "bytes": usage["total_bytes"],
        "bytes/edge": round(usage["total_bytes"] / num_edges, 2),
    })
    print(format_table(
        rows, title=f"Storage ({usage['backend']} backend)", scientific=False
    ))
    accounting = [
        {"measure": "resident bytes (private heap/segment)", "value": usage["resident_bytes"]},
        {"measure": "mapped bytes (snapshot page cache)", "value": usage["mapped_bytes"]},
        {"measure": "logical bytes (flat int64 CSR)", "value": usage["logical_bytes"]},
        {"measure": "compression ratio (stored/logical)",
         "value": round(usage["compression_ratio"], 3)},
    ]
    print(format_table(accounting, title="Byte accounting", scientific=False))
    graph.close_store()
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.source not in dataset_names() and not Path(args.source).exists():
        print(f"source {args.source!r} does not exist", file=sys.stderr)
        return 2
    graph = _load_graph_source(args.source)
    path = save_snapshot(graph, args.output, codec=args.codec)
    size = path.stat().st_size
    num_edges = max(1, graph.num_edges)
    usage = graph.memory_usage()
    print(
        f"wrote {path} ({args.codec}): {size} bytes, "
        f"{size / num_edges:.2f} bytes/edge on disk "
        f"(flat CSR in memory: {usage['logical_bytes'] / num_edges:.2f} bytes/edge)"
    )
    print(
        f"open it with Database({str(path)!r}), `repro serve --snapshot {path}` "
        f"or `repro info {path}`"
    )
    graph.close_store()
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.processes < 1:
        print("--processes must be at least 1", file=sys.stderr)
        return 2
    if args.processes > 1 and args.workers > 1:
        print("--workers and --processes are mutually exclusive", file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset)
    workload = generate_query_set(
        graph,
        count=args.queries,
        k=args.hops,
        setting=QuerySetting.HIGH_HIGH,
        seed=args.seed,
        graph_name=args.dataset,
    )
    settings = BenchmarkSettings(time_limit_seconds=args.time_limit, engine=args.engine)
    use_batch = args.batch or args.workers > 1 or args.processes > 1
    metrics = overall_comparison(
        graph,
        workload,
        args.algorithms,
        settings=settings,
        batch=use_batch,
        max_workers=args.workers,
        processes=args.processes,
        shards=args.shards,
        start_method=args.start_method,
    )
    rows = [m.as_row() for m in metrics.values()]
    if args.processes > 1:
        mode = f" [batch, {args.processes} processes]"
    else:
        mode = " [batch]" if use_batch else ""
    print(format_table(
        rows, title=f"Overall comparison on {args.dataset} (k={args.hops}){mode}"
    ))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.algorithm import DelayedAlgorithm
    from repro.server.server import serve_forever
    from repro.server.service import QueryService

    graph = _load_graph(args)
    algorithm = get_algorithm(args.algorithm)
    if args.delay_ms:
        # Capacity-experiment mode: a fixed per-query service delay makes
        # a shard's throughput a known constant (results are unchanged).
        algorithm = DelayedAlgorithm(algorithm, args.delay_ms / 1e3)
    service = QueryService(
        graph,
        algorithm=algorithm,
        processes=args.processes,
        threads=args.threads,
        shards=args.shards,
        start_method=args.start_method,
        shard_id=args.shard_id,
        max_pending_queries=args.max_pending_queries,
        max_queue_delay=(
            None if args.max_queue_delay_ms is None else args.max_queue_delay_ms / 1e3
        ),
    )
    port = SERVE_DEFAULT_PORT if args.port is None else args.port
    try:
        return asyncio.run(serve_forever(service, host=args.host, port=port))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0


def _command_route(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server.client import ReconnectPolicy
    from repro.server.router import ShardMap, ShardRouter, route_forever

    if args.shard_map:
        shard_map = ShardMap.from_file(args.shard_map)
    else:
        shard_map = ShardMap.from_entries(args.shard)
    router = ShardRouter(
        shard_map,
        hedge=not args.no_hedge,
        hedge_percentile=args.hedge_percentile,
        hedge_min_delay=args.hedge_min_delay_ms / 1e3,
        hedge_max_delay=args.hedge_max_delay_ms / 1e3,
        max_attempts=args.max_attempts,
        policy=ReconnectPolicy(attempts=1 + max(0, args.connect_retries)),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown_ms / 1e3,
    )
    port = ROUTE_DEFAULT_PORT if args.port is None else args.port
    try:
        return asyncio.run(route_forever(router, host=args.host, port=port))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0


def _client_queries(args: argparse.Namespace):
    """The workload to submit: explicit pairs, or a generated target-centric set."""
    if args.pair:
        queries = []
        for pair in args.pair:
            try:
                raw_source, raw_target = _split_pair(pair)
            except ValueError:
                print(f"invalid --pair {pair!r}: expected SOURCE,TARGET", file=sys.stderr)
                raise SystemExit(2)
            # The server resolves external ids against its own graph (both
            # int and string spellings are tried there), so the raw strings
            # can travel as-is.
            queries.append([raw_source, raw_target, args.hops])
        return queries, True
    if not args.dataset:
        raise SystemExit("either --pair or --dataset is required (workload source)")
    graph = load_dataset(args.dataset)
    workload = generate_target_centric_set(
        graph,
        count=args.queries,
        k=args.hops,
        num_targets=args.targets,
        seed=args.seed,
        graph_name=args.dataset,
    )
    return [[q.source, q.target, q.k] for q in workload], False


def _client_update_replay(args: argparse.Namespace) -> int:
    """Replay a remove / re-insert cycle over sampled edges (``--updates``).

    Each sampled edge is removed and immediately re-inserted through
    ``update`` frames, so the run is idempotent — the served graph ends
    exactly where it started — while every cycle still publishes two real
    epochs (CSR rebuild, distance repair, segment republish) whose
    round-trip latency is what gets reported.
    """
    import asyncio
    import random as random_module

    from repro.bench.metrics import latency_summary
    from repro.bench.reporting import format_latency_summary
    from repro.server.client import QueryClient

    if args.updates < 1:
        print("--updates must be at least 1", file=sys.stderr)
        return 2
    if not args.dataset:
        print(
            "--updates needs --dataset (the edge population to sample; must "
            "match the server's graph)",
            file=sys.stderr,
        )
        return 2
    graph = load_dataset(args.dataset)
    rng = random_module.Random(args.update_seed)
    sources = graph.edge_sources()
    targets = graph.out_csr()[1]
    picks = rng.sample(range(graph.num_edges), min(args.updates, graph.num_edges))
    edges = [[int(sources[i]), int(targets[i])] for i in picks]

    async def _replay():
        client = await QueryClient.connect(args.host, args.port)
        async with client:
            loop = asyncio.get_running_loop()
            latencies = []
            last = {}
            for edge in edges:
                for batch in ({"remove": [edge]}, {"add": [edge]}):
                    started = loop.time()
                    last = await client.update(**batch)
                    latencies.append((loop.time() - started) * 1e3)
            return latencies, last

    try:
        latencies, last = asyncio.run(_replay())
    except (RuntimeError, ConnectionError, OSError) as error:
        print(f"update replay failed: {error}", file=sys.stderr)
        return 1
    print(
        f"replayed {len(edges)} edges (remove + re-insert) against "
        f"{args.host}:{args.port}: {len(latencies)} mutations, final epoch "
        f"{last.get('epoch')}"
    )
    stats = last.get("stats") or {}
    if stats:
        print(
            f"live counters: {stats.get('epochs_published')} epochs published, "
            f"{stats.get('compactions')} compactions, "
            f"{stats.get('distance_repairs_incremental')} incremental repairs, "
            f"{stats.get('distance_repairs_full')} full recomputes"
        )
    if latencies:
        print(format_latency_summary(
            latency_summary(latencies), title="Update latency (ms)"
        ))
    return 0


def _command_client(args: argparse.Namespace) -> int:
    import asyncio

    from repro.bench.metrics import latency_summary
    from repro.bench.reporting import format_latency_summary
    from repro.server.client import QueryClient, open_loop_load
    from repro.workloads.queries import poisson_arrival_times

    if args.server_stats:
        async def _stats():
            client = await QueryClient.connect(args.host, args.port)
            async with client:
                return await client.stats()

        stats = asyncio.run(_stats())
        # A router's snapshot nests a per-shard health probe under "shards";
        # render it as its own table instead of a flat value.
        shard_probe = stats.pop("shards", None)
        rows = [
            {"statistic": key, "value": value}
            for key, value in sorted(stats.items())
        ]
        title = "Router statistics" if stats.get("role") == "router" else "Server statistics"
        print(format_table(rows, title=title, scientific=False))
        if shard_probe:
            shard_rows = []
            for shard in shard_probe:
                for replica in shard["replicas"]:
                    shard_rows.append(
                        {
                            "shard": shard["shard"],
                            "address": replica.get("address"),
                            "connected": replica.get("connected"),
                            "shard_id": replica.get("shard_id"),
                            "version": replica.get("server_version"),
                            "rtt_ms": replica.get("rtt_ms"),
                            "jobs_active": replica.get("jobs_active"),
                            "queries_done": replica.get("queries_completed"),
                        }
                    )
            print(format_table(shard_rows, title="Shard health", scientific=False))
        return 0

    if args.updates is not None:
        return _client_update_replay(args)

    queries, external = _client_queries(args)
    if args.rate is not None:
        arrivals = poisson_arrival_times(len(queries), args.rate, seed=args.seed)
        report = asyncio.run(
            open_loop_load(
                queries,
                arrivals.tolist(),
                host=args.host,
                port=args.port,
                connections=args.connections,
                store_paths=False,
                result_limit=args.limit,
                time_limit_seconds=args.time_limit,
                external=external,
                engine=None if args.engine == "auto" else args.engine,
            )
        )
        if report.errors:
            print(f"{report.errors} of {len(queries)} queries failed", file=sys.stderr)
        print(
            f"open loop: {report.completed} queries over {report.wall_seconds:.2f} s "
            f"(offered {report.offered_rate:.1f} q/s, achieved "
            f"{report.achieved_qps:.1f} q/s, {report.concurrency} connections, "
            f"{report.total_paths} paths)"
        )
        if report.shed or report.retried or report.reassigned:
            print(
                f"overload: {report.shed} shed, {report.retried} retried after "
                f"server backpressure, {report.reassigned} arrivals reassigned "
                f"off dead connections"
            )
        if report.latencies_ms:
            print(format_latency_summary(
                latency_summary(report.latencies_ms), title="Completion latency (ms)"
            ))
        return 1 if report.errors else 0

    # One-shot batch mode goes through the same façade as local execution:
    # the remote backend ships the specs (engine selection included) as one
    # submit frame and rebuilds the streamed result frames.
    try:
        with Database(f"{args.host}:{args.port}") as db:
            stream = db.batch(
                queries,
                external=external,
                store_paths=not args.count_only,
                limit=args.limit,
                deadline=args.time_limit,
                engine=args.engine,
            )
            results = stream.results()
            stats = stream.stats()
    except (RuntimeError, ConnectionError, OSError) as error:
        print(f"job failed: {error}", file=sys.stderr)
        return 1
    rows = [
        {
            "source": result.source,
            "target": result.target,
            "k": result.k,
            "paths": result.count,
            "query_ms": round(result.query_millis, 3),
            "plan": result.stats.plan,
            "bfs_cached": result.stats.bfs_cache_hit,
        }
        for result in results
    ]
    print(format_table(
        rows, title=f"Batch of {len(queries)} queries via {args.host}:{args.port}",
        scientific=False,
    ))
    print(f"total paths: {stats.total_paths}")
    print(f"job done after {stats.wall_seconds * 1e3:.1f} ms (client clock)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "query":
        return _command_query(args)
    if args.command == "batch-query":
        return _command_batch_query(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "info":
        return _command_info(args)
    if args.command == "convert":
        return _command_convert(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "route":
        return _command_route(args)
    if args.command == "client":
        return _command_client(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
