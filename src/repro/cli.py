"""Command-line interface: ``repro`` / ``pathenum`` (or ``python -m repro``).

Sub-commands
------------

``query``
    Evaluate a single HcPE query on an edge-list file or a named synthetic
    dataset and print the paths (or just the count).

``batch-query``
    Evaluate a whole query set as one unit through the batch execution
    engine (shared reverse-BFS distances, optional thread pool) and print
    per-query counts plus the batch cache statistics.

``datasets``
    List the synthetic dataset registry with Table 2 style properties.

``info``
    Print a graph's size, storage backend and per-array memory footprint.

``bench``
    Run the overall comparison (a Table 3 row) on one dataset and print the
    aggregated metrics; ``--batch`` routes every algorithm through the
    batch executor instead of one-at-a-time runs.

Both ``batch-query`` and ``bench`` accept ``--processes`` (and ``--shards``)
to fan the batch out over target-sharded worker processes attached to a
shared-memory copy of the graph; ``--workers`` keeps selecting the in-process
thread pool.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.baselines.registry import PAPER_ALGORITHMS, available_algorithms, get_algorithm
from repro.bench.comparison import overall_comparison
from repro.bench.reporting import format_table
from repro.bench.runner import BenchmarkSettings
from repro.core.engine import BatchExecutor, ProcessBatchExecutor
from repro.core.listener import RunConfig
from repro.errors import VertexNotFoundError
from repro.core.query import Query
from repro.graph.io import load_npz, read_edge_list
from repro.graph.properties import summarize
from repro.workloads.datasets import dataset_names, load_dataset, registry
from repro.workloads.queries import (
    QuerySetting,
    generate_query_set,
    generate_target_centric_set,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pathenum",
        description="Hop-constrained s-t path enumeration (PathEnum, SIGMOD 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query_parser = subparsers.add_parser("query", help="evaluate a single HcPE query")
    source_group = query_parser.add_mutually_exclusive_group(required=True)
    source_group.add_argument("--edge-list", help="path to a SNAP-style edge list file")
    source_group.add_argument(
        "--dataset", choices=dataset_names(), help="name of a synthetic dataset"
    )
    query_parser.add_argument("--source", required=True, help="source vertex id")
    query_parser.add_argument("--target", required=True, help="target vertex id")
    query_parser.add_argument("-k", "--hops", type=int, required=True, help="hop constraint")
    query_parser.add_argument(
        "--algorithm",
        default="PathEnum",
        help=f"algorithm to use (default PathEnum; available: {', '.join(sorted(available_algorithms()))})",
    )
    query_parser.add_argument("--count-only", action="store_true", help="print only the count")
    query_parser.add_argument("--limit", type=int, default=None, help="stop after N results")
    query_parser.add_argument(
        "--time-limit", type=float, default=None, help="per-query time limit in seconds"
    )

    batch_parser = subparsers.add_parser(
        "batch-query", help="evaluate a query set through the batch execution engine"
    )
    batch_source_group = batch_parser.add_mutually_exclusive_group(required=True)
    batch_source_group.add_argument("--edge-list", help="path to a SNAP-style edge list file")
    batch_source_group.add_argument(
        "--dataset", choices=dataset_names(), help="name of a synthetic dataset"
    )
    batch_parser.add_argument(
        "--pair",
        action="append",
        default=None,
        metavar="SOURCE,TARGET",
        help="explicit query endpoints (repeatable); omit to generate a workload",
    )
    batch_parser.add_argument("-k", "--hops", type=int, required=True, help="hop constraint")
    batch_parser.add_argument(
        "--queries", type=int, default=20, help="generated workload size (without --pair)"
    )
    batch_parser.add_argument(
        "--targets", type=int, default=4,
        help="distinct targets of the generated workload (repeated-target traffic shape)",
    )
    batch_parser.add_argument(
        "--algorithm", default="PathEnum",
        help="algorithm to use (default PathEnum)",
    )
    batch_parser.add_argument(
        "--workers", type=int, default=1, help="thread-pool size (1 = sequential)"
    )
    batch_parser.add_argument(
        "--processes", type=int, default=1,
        help="worker processes sharing the graph via shared memory (1 = in-process)",
    )
    batch_parser.add_argument(
        "--shards", type=int, default=None,
        help="target shards for --processes (default: one per process)",
    )
    batch_parser.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
        help="multiprocessing start method for --processes (default: fork if available)",
    )
    batch_parser.add_argument("--time-limit", type=float, default=None)
    batch_parser.add_argument("--limit", type=int, default=None, help="result cap per query")
    batch_parser.add_argument("--seed", type=int, default=0)

    datasets_parser = subparsers.add_parser("datasets", help="list the synthetic dataset registry")
    datasets_parser.add_argument(
        "--build", action="store_true", help="build each graph and report measured properties"
    )

    info_parser = subparsers.add_parser(
        "info", help="print size, backend and memory footprint of a graph"
    )
    info_parser.add_argument(
        "graph",
        help="a synthetic dataset name or a path to an edge-list / .npz snapshot file",
    )

    bench_parser = subparsers.add_parser("bench", help="run the overall comparison on one dataset")
    bench_parser.add_argument("--dataset", default="gg", choices=dataset_names())
    bench_parser.add_argument("-k", "--hops", type=int, default=4)
    bench_parser.add_argument("--queries", type=int, default=20, help="number of queries")
    bench_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=list(PAPER_ALGORITHMS),
        help="algorithms to compare",
    )
    bench_parser.add_argument("--time-limit", type=float, default=2.0)
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument(
        "--batch", action="store_true",
        help="route algorithms through the batch execution engine",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=1, help="batch thread-pool size (implies --batch)"
    )
    bench_parser.add_argument(
        "--processes", type=int, default=1,
        help="worker processes for batch execution (implies --batch)",
    )
    bench_parser.add_argument(
        "--shards", type=int, default=None,
        help="target shards for --processes (default: one per process)",
    )
    bench_parser.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
        help="multiprocessing start method for --processes (default: fork on Linux)",
    )
    return parser


def _command_query(args: argparse.Namespace) -> int:
    if args.edge_list:
        graph = read_edge_list(args.edge_list)
    else:
        graph = load_dataset(args.dataset)
    try:
        source = graph.to_internal(int(args.source))
        target = graph.to_internal(int(args.target))
    except (ValueError, KeyError):
        source = graph.to_internal(args.source)
        target = graph.to_internal(args.target)
    query = Query(source, target, args.hops)
    algorithm = get_algorithm(args.algorithm)
    config = RunConfig(
        store_paths=not args.count_only,
        result_limit=args.limit,
        time_limit_seconds=args.time_limit,
    )
    result = algorithm.run(graph, query, config)
    print(f"algorithm: {result.algorithm}")
    print(f"query: q({args.source}, {args.target}, {args.hops})")
    print(f"paths: {result.count}")
    print(f"query time: {result.query_millis:.3f} ms")
    if result.stats.plan:
        print(f"plan: {result.stats.plan}")
    if not args.count_only and result.paths is not None:
        for path in result.paths:
            print(" -> ".join(str(graph.to_external(v)) for v in path))
    return 0


def _load_graph(args: argparse.Namespace):
    if args.edge_list:
        return read_edge_list(args.edge_list)
    return load_dataset(args.dataset)


def _command_batch_query(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.processes < 1:
        print("--processes must be at least 1", file=sys.stderr)
        return 2
    if args.processes > 1 and args.workers > 1:
        print("--workers and --processes are mutually exclusive", file=sys.stderr)
        return 2
    graph = _load_graph(args)
    if args.pair:
        queries = []
        for pair in args.pair:
            try:
                raw_source, raw_target = pair.split(",", 1)
            except ValueError:
                print(f"invalid --pair {pair!r}: expected SOURCE,TARGET", file=sys.stderr)
                return 2
            queries.append(
                Query.from_external(
                    graph,
                    _coerce_vertex(graph, raw_source.strip()),
                    _coerce_vertex(graph, raw_target.strip()),
                    args.hops,
                )
            )
    else:
        workload = generate_target_centric_set(
            graph,
            count=args.queries,
            k=args.hops,
            num_targets=args.targets,
            seed=args.seed,
            graph_name=args.dataset or args.edge_list,
        )
        queries = list(workload)

    config = RunConfig(
        store_paths=False,
        result_limit=args.limit,
        time_limit_seconds=args.time_limit,
    )
    if args.processes > 1:
        with ProcessBatchExecutor(
            graph,
            algorithm=get_algorithm(args.algorithm),
            processes=args.processes,
            shards=args.shards,
            start_method=args.start_method,
        ) as executor:
            batch = executor.run(queries, config)
    else:
        executor = BatchExecutor(
            graph, algorithm=get_algorithm(args.algorithm), max_workers=args.workers
        )
        batch = executor.run(queries, config)
    rows = [
        {
            "source": graph.to_external(result.source),
            "target": graph.to_external(result.target),
            "k": result.k,
            "paths": result.count,
            "query_ms": round(result.query_millis, 3),
            "plan": result.stats.plan,
            "bfs_cached": result.stats.bfs_cache_hit,
        }
        for result in batch.results
    ]
    print(format_table(rows, title=f"Batch of {len(queries)} queries ({args.algorithm})",
                       scientific=False))
    stats = batch.stats.as_row()
    print(f"total paths: {batch.total_paths}")
    print(f"batch wall time: {stats['wall_ms']} ms "
          f"({batch.throughput:.0f} paths/s)")
    print(
        f"reverse BFS runs: {stats['reverse_bfs_runs']} for {stats['queries']} queries "
        f"(cache hit rate {stats['hit_rate']:.0%})"
    )
    return 0


def _coerce_vertex(graph, raw: str):
    """External vertex ids on the command line may be ints or strings."""
    try:
        candidate = int(raw)
    except ValueError:
        return raw
    try:
        graph.to_internal(candidate)
        return candidate
    except VertexNotFoundError:
        return raw


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in registry().items():
        row = {
            "name": name,
            "dataset": spec.full_name,
            "type": spec.category,
            "paper |V|": spec.paper_vertices,
            "paper |E|": spec.paper_edges,
            "paper d_avg": spec.paper_avg_degree,
        }
        if args.build:
            summary = summarize(load_dataset(name))
            row.update({"|V|": summary.num_vertices, "|E|": summary.num_edges,
                        "d_avg": round(summary.avg_degree, 1)})
        rows.append(row)
    print(format_table(rows, title="Synthetic dataset registry (Table 2 stand-ins)",
                       scientific=False))
    return 0


def _command_info(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.graph in dataset_names():
        graph = load_dataset(args.graph)
        origin = f"dataset {args.graph!r}"
    elif Path(args.graph).exists():
        if args.graph.endswith(".npz"):
            graph = load_npz(args.graph)
        else:
            graph = read_edge_list(args.graph)
        origin = args.graph
    else:
        print(
            f"unknown graph {args.graph!r}: not a dataset name "
            f"({', '.join(dataset_names())}) and not an existing file",
            file=sys.stderr,
        )
        return 2
    usage = graph.memory_usage()
    print(repr(graph))
    print(f"source: {origin}")
    summary = summarize(graph)
    print(format_table([summary.as_row()], title="Graph properties", scientific=False))
    rows = [
        {"array": name, "bytes": nbytes}
        for name, nbytes in usage["arrays"].items()
    ]
    rows.append({"array": "total", "bytes": usage["total_bytes"]})
    print(format_table(
        rows, title=f"Storage ({usage['backend']} backend)", scientific=False
    ))
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.processes < 1:
        print("--processes must be at least 1", file=sys.stderr)
        return 2
    if args.processes > 1 and args.workers > 1:
        print("--workers and --processes are mutually exclusive", file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset)
    workload = generate_query_set(
        graph,
        count=args.queries,
        k=args.hops,
        setting=QuerySetting.HIGH_HIGH,
        seed=args.seed,
        graph_name=args.dataset,
    )
    settings = BenchmarkSettings(time_limit_seconds=args.time_limit)
    use_batch = args.batch or args.workers > 1 or args.processes > 1
    metrics = overall_comparison(
        graph,
        workload,
        args.algorithms,
        settings=settings,
        batch=use_batch,
        max_workers=args.workers,
        processes=args.processes,
        shards=args.shards,
        start_method=args.start_method,
    )
    rows = [m.as_row() for m in metrics.values()]
    if args.processes > 1:
        mode = f" [batch, {args.processes} processes]"
    else:
        mode = " [batch]" if use_batch else ""
    print(format_table(
        rows, title=f"Overall comparison on {args.dataset} (k={args.hops}){mode}"
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "query":
        return _command_query(args)
    if args.command == "batch-query":
        return _command_batch_query(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "info":
        return _command_info(args)
    if args.command == "bench":
        return _command_bench(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
