"""Command-line interface: ``pathenum`` (or ``python -m repro``).

Sub-commands
------------

``query``
    Evaluate a single HcPE query on an edge-list file or a named synthetic
    dataset and print the paths (or just the count).

``datasets``
    List the synthetic dataset registry with Table 2 style properties.

``bench``
    Run the overall comparison (a Table 3 row) on one dataset and print the
    aggregated metrics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.baselines.registry import PAPER_ALGORITHMS, available_algorithms, get_algorithm
from repro.bench.comparison import overall_comparison
from repro.bench.reporting import format_table
from repro.bench.runner import BenchmarkSettings
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.graph.io import read_edge_list
from repro.graph.properties import summarize
from repro.workloads.datasets import dataset_names, load_dataset, registry
from repro.workloads.queries import QuerySetting, generate_query_set

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pathenum",
        description="Hop-constrained s-t path enumeration (PathEnum, SIGMOD 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query_parser = subparsers.add_parser("query", help="evaluate a single HcPE query")
    source_group = query_parser.add_mutually_exclusive_group(required=True)
    source_group.add_argument("--edge-list", help="path to a SNAP-style edge list file")
    source_group.add_argument(
        "--dataset", choices=dataset_names(), help="name of a synthetic dataset"
    )
    query_parser.add_argument("--source", required=True, help="source vertex id")
    query_parser.add_argument("--target", required=True, help="target vertex id")
    query_parser.add_argument("-k", "--hops", type=int, required=True, help="hop constraint")
    query_parser.add_argument(
        "--algorithm",
        default="PathEnum",
        help=f"algorithm to use (default PathEnum; available: {', '.join(sorted(available_algorithms()))})",
    )
    query_parser.add_argument("--count-only", action="store_true", help="print only the count")
    query_parser.add_argument("--limit", type=int, default=None, help="stop after N results")
    query_parser.add_argument(
        "--time-limit", type=float, default=None, help="per-query time limit in seconds"
    )

    datasets_parser = subparsers.add_parser("datasets", help="list the synthetic dataset registry")
    datasets_parser.add_argument(
        "--build", action="store_true", help="build each graph and report measured properties"
    )

    bench_parser = subparsers.add_parser("bench", help="run the overall comparison on one dataset")
    bench_parser.add_argument("--dataset", default="gg", choices=dataset_names())
    bench_parser.add_argument("-k", "--hops", type=int, default=4)
    bench_parser.add_argument("--queries", type=int, default=20, help="number of queries")
    bench_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=list(PAPER_ALGORITHMS),
        help="algorithms to compare",
    )
    bench_parser.add_argument("--time-limit", type=float, default=2.0)
    bench_parser.add_argument("--seed", type=int, default=0)
    return parser


def _command_query(args: argparse.Namespace) -> int:
    if args.edge_list:
        graph = read_edge_list(args.edge_list)
    else:
        graph = load_dataset(args.dataset)
    try:
        source = graph.to_internal(int(args.source))
        target = graph.to_internal(int(args.target))
    except (ValueError, KeyError):
        source = graph.to_internal(args.source)
        target = graph.to_internal(args.target)
    query = Query(source, target, args.hops)
    algorithm = get_algorithm(args.algorithm)
    config = RunConfig(
        store_paths=not args.count_only,
        result_limit=args.limit,
        time_limit_seconds=args.time_limit,
    )
    result = algorithm.run(graph, query, config)
    print(f"algorithm: {result.algorithm}")
    print(f"query: q({args.source}, {args.target}, {args.hops})")
    print(f"paths: {result.count}")
    print(f"query time: {result.query_millis:.3f} ms")
    if result.stats.plan:
        print(f"plan: {result.stats.plan}")
    if not args.count_only and result.paths is not None:
        for path in result.paths:
            print(" -> ".join(str(graph.to_external(v)) for v in path))
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in registry().items():
        row = {
            "name": name,
            "dataset": spec.full_name,
            "type": spec.category,
            "paper |V|": spec.paper_vertices,
            "paper |E|": spec.paper_edges,
            "paper d_avg": spec.paper_avg_degree,
        }
        if args.build:
            summary = summarize(load_dataset(name))
            row.update({"|V|": summary.num_vertices, "|E|": summary.num_edges,
                        "d_avg": round(summary.avg_degree, 1)})
        rows.append(row)
    print(format_table(rows, title="Synthetic dataset registry (Table 2 stand-ins)",
                       scientific=False))
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset)
    workload = generate_query_set(
        graph,
        count=args.queries,
        k=args.hops,
        setting=QuerySetting.HIGH_HIGH,
        seed=args.seed,
        graph_name=args.dataset,
    )
    settings = BenchmarkSettings(time_limit_seconds=args.time_limit)
    metrics = overall_comparison(graph, workload, args.algorithms, settings=settings)
    rows = [m.as_row() for m in metrics.values()]
    print(format_table(rows, title=f"Overall comparison on {args.dataset} (k={args.hops})"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "query":
        return _command_query(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "bench":
        return _command_bench(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
