"""BC-DFS: the barrier-based polynomial-delay algorithm of Peng et al. [29].

The algorithm refines the generic backtracking framework with *barriers*.
Every vertex ``v`` carries a barrier ``bar(v)``, a lower bound on the number
of hops still needed to reach ``t`` from ``v`` while avoiding the vertices
currently on the search stack.  Initially ``bar(v) = S(v, t | G)``.  When the
subtree explored below ``v`` with remaining budget ``b`` produces no result,
the algorithm learns that ``v`` cannot reach ``t`` within ``b`` hops while
the current stack is in place, so it raises ``bar(v)`` to ``b + 1`` and will
skip ``v`` the next time it is offered with a budget of at most ``b``.

Raised barriers are only valid while the stack prefix that caused the
failure is still in place.  Because DFS stacks are prefixes of one another,
attributing each raise to the depth of the vertex that was on top of the
stack at raise time and rolling the raises back when that vertex is popped
keeps the pruning sound: a barrier is consulted only while the blocking
prefix is guaranteed to be a subset of the current stack.

This reimplementation follows the description in [29] and in Appendix D of
the PathEnum paper; the original C++ sources are not redistributable here.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.core.algorithm import Algorithm, timed_run
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded

__all__ = ["BcDfs"]

#: Barrier value meaning "cannot reach the target at all".
_INFINITE_BARRIER = 1 << 30


class BcDfs(Algorithm):
    """Barrier-based hop-constrained path enumeration (the paper's BC-DFS)."""

    name = "BC-DFS"

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        query.validate(graph)

        def body(collector: ResultCollector, deadline: Deadline, stats: EnumerationStats) -> None:
            bfs_started = time.perf_counter()
            dist_to_t = bfs_distances_bounded(graph, query.target, cutoff=query.k, reverse=True)
            stats.add_phase(Phase.BFS, time.perf_counter() - bfs_started)

            enumeration_started = time.perf_counter()
            try:
                _BarrierSearch(graph, query, dist_to_t, collector, deadline, stats).run()
            finally:
                stats.add_phase(Phase.ENUMERATION, time.perf_counter() - enumeration_started)

        return timed_run(self.name, query, config, body)


class _BarrierSearch:
    """One BC-DFS run; keeps the barrier bookkeeping together."""

    def __init__(
        self,
        graph: DiGraph,
        query: Query,
        dist_to_t: np.ndarray,
        collector: ResultCollector,
        deadline: Deadline,
        stats: EnumerationStats,
    ) -> None:
        self.graph = graph
        self.query = query
        self.collector = collector
        self.deadline = deadline
        self.stats = stats
        self.barrier = np.where(
            dist_to_t == UNREACHABLE, _INFINITE_BARRIER, dist_to_t
        ).astype(np.int64)
        self.path: List[int] = [query.source]
        self.on_path = {query.source}
        # raised_under[d] holds (vertex, previous_barrier) pairs whose raise
        # is only valid while the vertex at stack depth d remains on the path.
        self.raised_under: List[List[Tuple[int, int]]] = [[]]

    def run(self) -> None:
        self._search()

    def _search(self) -> int:
        self.deadline.check()
        v = self.path[-1]
        t, k = self.query.target, self.query.k
        if v == t:
            self.collector.emit(self.path)
            return 1
        depth = len(self.path) - 1
        budget = k - depth - 1  # hops available after moving to a neighbour
        found = 0
        neighbors = self.graph.neighbors(v)
        self.stats.edges_accessed += len(neighbors)
        for v_next in neighbors:
            v_next = int(v_next)
            if v_next in self.on_path:
                continue
            if int(self.barrier[v_next]) > budget:
                continue
            self.stats.partial_results_generated += 1
            self.path.append(v_next)
            self.on_path.add(v_next)
            self.raised_under.append([])
            try:
                sub_found = self._search()
            finally:
                frame_raises = self.raised_under.pop()
                for vertex, previous in frame_raises:
                    self.barrier[vertex] = previous
                self.path.pop()
                self.on_path.discard(v_next)
            if sub_found == 0:
                self.stats.invalid_partial_results += 1
                # The failure happened while the current vertex v (depth
                # ``depth``) was the deepest stack entry: raise the barrier
                # and remember to roll it back when v is popped.
                previous = int(self.barrier[v_next])
                new_barrier = budget + 1
                if new_barrier > previous:
                    self.raised_under[depth].append((v_next, previous))
                    self.barrier[v_next] = new_barrier
            found += sub_found
        return found
