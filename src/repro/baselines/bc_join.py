"""BC-JOIN: the join-oriented variant of BC-DFS (Peng et al. [29]).

BC-JOIN splits every result path at the middle position ``m = ceil(k / 2)``:

1. compute the set of vertices that can appear at position ``m`` of a result
   (within ``m`` hops of ``s`` and ``k - m`` hops of ``t``);
2. enumerate the *left* partial paths from ``s`` — either exactly ``m`` edges
   long and ending at a middle vertex, or shorter paths that already reach
   ``t`` (these are complete results on their own);
3. enumerate the *right* partial paths from every middle vertex to ``t`` with
   at most ``k - m`` edges;
4. hash-join the two sides on the middle vertex, discarding combinations
   that share a vertex.

Unlike IDX-JOIN there is no query-dependent index and no cost-based cut
selection — the cut is always the middle — which is exactly the contrast the
paper draws in Appendix D.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.algorithm import Algorithm, timed_run
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded

__all__ = ["BcJoin"]

Walk = Tuple[int, ...]


class BcJoin(Algorithm):
    """Middle-vertex join enumeration (the paper's BC-JOIN)."""

    name = "BC-JOIN"

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        query.validate(graph)

        def body(collector: ResultCollector, deadline: Deadline, stats: EnumerationStats) -> None:
            s, t, k = query.source, query.target, query.k
            bfs_started = time.perf_counter()
            dist_to_t = bfs_distances_bounded(graph, t, cutoff=k, reverse=True)
            dist_from_s = bfs_distances_bounded(graph, s, cutoff=k)
            stats.add_phase(Phase.BFS, time.perf_counter() - bfs_started)

            join_started = time.perf_counter()
            middle = math.ceil(k / 2)

            # Left side: paths from s with exactly `middle` edges, or shorter
            # paths that terminate at t (complete results).
            left_paths: List[Walk] = []
            short_results: List[Walk] = []
            _enumerate_partials(
                graph,
                start=s,
                max_length=middle,
                stop_at=t,
                distance_bound=lambda v, used: int(dist_to_t[v]) != UNREACHABLE
                and used + int(dist_to_t[v]) <= k,
                sink_exact=left_paths,
                sink_terminal=short_results,
                terminal=t,
                deadline=deadline,
                stats=stats,
            )
            for path in short_results:
                collector.emit(path)

            middle_vertices = {p[-1] for p in left_paths if p[-1] != t}
            # Right side: paths from each middle vertex to t with at most
            # k - middle edges.
            right_by_head: Dict[int, List[Walk]] = {}
            right_count = 0
            for v in sorted(middle_vertices):
                paths_from_v: List[Walk] = []
                _enumerate_to_target(
                    graph,
                    start=v,
                    target=t,
                    max_length=k - middle,
                    dist_to_t=dist_to_t,
                    forbidden=(s,),
                    sink=paths_from_v,
                    deadline=deadline,
                    stats=stats,
                )
                if paths_from_v:
                    right_by_head[v] = paths_from_v
                    right_count += len(paths_from_v)

            stats.peak_partial_result_tuples = max(
                stats.peak_partial_result_tuples, len(left_paths) + right_count
            )
            stats.peak_partial_result_bytes = max(
                stats.peak_partial_result_bytes,
                8 * ((middle + 1) * len(left_paths) + (k - middle + 1) * right_count),
            )

            # Join on the middle vertex with a vertex-disjointness check.
            for left in left_paths:
                deadline.check()
                if left[-1] == t:
                    # Exactly-middle-length path that already ends at t.
                    collector.emit(left)
                    continue
                matches = right_by_head.get(left[-1], ())
                left_set = set(left)
                produced = 0
                for right in matches:
                    if any(v in left_set for v in right[1:]):
                        continue
                    collector.emit(left + right[1:])
                    produced += 1
                if produced == 0:
                    stats.invalid_partial_results += 1
            stats.add_phase(Phase.JOIN, time.perf_counter() - join_started)

        return timed_run(self.name, query, config, body)


def _enumerate_partials(
    graph: DiGraph,
    *,
    start: int,
    max_length: int,
    stop_at: int,
    distance_bound,
    sink_exact: List[Walk],
    sink_terminal: List[Walk],
    terminal: int,
    deadline: Deadline,
    stats: EnumerationStats,
) -> None:
    """Enumerate simple paths from ``start`` used as the join's left side.

    Paths of exactly ``max_length`` edges go to ``sink_exact``; shorter paths
    that reach ``terminal`` early go to ``sink_terminal``.
    """
    path = [start]
    on_path = {start}

    def recurse() -> None:
        deadline.check()
        v = path[-1]
        used = len(path) - 1
        if v == terminal:
            if used < max_length:
                sink_terminal.append(tuple(path))
            else:
                sink_exact.append(tuple(path))
            return
        if used == max_length:
            sink_exact.append(tuple(path))
            return
        neighbors = graph.neighbors(v)
        stats.edges_accessed += len(neighbors)
        for v_next in neighbors:
            v_next = int(v_next)
            if v_next in on_path:
                continue
            if not distance_bound(v_next, used + 1):
                continue
            stats.partial_results_generated += 1
            path.append(v_next)
            on_path.add(v_next)
            try:
                recurse()
            finally:
                path.pop()
                on_path.discard(v_next)

    recurse()


def _enumerate_to_target(
    graph: DiGraph,
    *,
    start: int,
    target: int,
    max_length: int,
    dist_to_t: np.ndarray,
    forbidden: Tuple[int, ...],
    sink: List[Walk],
    deadline: Deadline,
    stats: EnumerationStats,
) -> None:
    """Enumerate simple paths ``start -> target`` with at most ``max_length`` edges."""
    path = [start]
    on_path = {start}
    banned = set(forbidden)

    def recurse() -> None:
        deadline.check()
        v = path[-1]
        used = len(path) - 1
        if v == target:
            sink.append(tuple(path))
            return
        if used == max_length:
            return
        neighbors = graph.neighbors(v)
        stats.edges_accessed += len(neighbors)
        remaining_budget = max_length - (used + 1)
        for v_next in neighbors:
            v_next = int(v_next)
            if v_next in on_path or v_next in banned:
                continue
            barrier = int(dist_to_t[v_next])
            if barrier == UNREACHABLE or barrier > remaining_budget:
                continue
            stats.partial_results_generated += 1
            path.append(v_next)
            on_path.add(v_next)
            try:
                recurse()
            finally:
                path.pop()
                on_path.discard(v_next)

    recurse()
