"""Name-based registry of enumeration algorithms.

The benchmark harness and the CLI refer to algorithms by the names used in
the paper's tables (``"BC-DFS"``, ``"IDX-JOIN"`` ...).  The registry maps
those names to factories; user code can register additional algorithms for
side-by-side comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.algorithm import Algorithm
from repro.core.engine import IdxDfs, IdxJoin, PathEnum

__all__ = ["get_algorithm", "available_algorithms", "register_algorithm", "PAPER_ALGORITHMS"]

_FACTORIES: Dict[str, Callable[[], Algorithm]] = {}

#: The five algorithms compared in Table 3 of the paper, in table order.
PAPER_ALGORITHMS = ("BC-DFS", "BC-JOIN", "IDX-DFS", "IDX-JOIN", "PathEnum")


def register_algorithm(name: str, factory: Callable[[], Algorithm], *, overwrite: bool = False) -> None:
    """Register an algorithm factory under ``name``."""
    key = name.lower()
    if key in _FACTORIES and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    _FACTORIES[key] = factory


def get_algorithm(name: str) -> Algorithm:
    """Instantiate the algorithm registered under ``name`` (case-insensitive)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(sorted(available_algorithms()))}"
        )
    return _FACTORIES[key]()


def available_algorithms() -> List[str]:
    """Canonical names of all registered algorithms."""
    return [factory().name for factory in _FACTORIES.values()]


def _register_builtins() -> None:
    from repro.baselines.bc_dfs import BcDfs
    from repro.baselines.bc_join import BcJoin
    from repro.baselines.full_join import FullJoin
    from repro.baselines.generic_dfs import GenericDfs
    from repro.baselines.t_dfs import TDfs
    from repro.baselines.yen import YenKsp
    from repro.core.reverse import IdxDfsReverse

    builtin = {
        "BC-DFS": BcDfs,
        "BC-JOIN": BcJoin,
        "IDX-DFS": IdxDfs,
        "IDX-JOIN": IdxJoin,
        "PathEnum": PathEnum,
        "GenericDFS": GenericDfs,
        "T-DFS": TDfs,
        "Yen-KSP": YenKsp,
        "FullJoin": FullJoin,
        "IDX-DFS-REV": IdxDfsReverse,
    }
    for name, cls in builtin.items():
        if name.lower() not in _FACTORIES:
            register_algorithm(name, cls)


_register_builtins()
