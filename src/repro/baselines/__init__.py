"""Baseline algorithms the paper compares against.

* :class:`~repro.baselines.generic_dfs.GenericDfs` — Algorithm 1, the shared
  backtracking skeleton with static distance pruning;
* :class:`~repro.baselines.bc_dfs.BcDfs` — the barrier-based polynomial-delay
  algorithm of Peng et al. [29] (the paper's main competitor);
* :class:`~repro.baselines.bc_join.BcJoin` — the join-oriented variant of
  BC-DFS splitting paths at the middle position;
* :class:`~repro.baselines.t_dfs.TDfs` — the certification-based
  polynomial-delay algorithm of Rizzi et al. [33];
* :class:`~repro.baselines.yen.YenKsp` — a top-K shortest loopless path
  adapter (Yen's algorithm), the KSP family discussed in related work;
* :class:`~repro.baselines.full_join.FullJoin` — the chain join evaluated on
  the fully-reduced relations of Algorithm 2 (no light-weight index).
"""

from repro.baselines.bc_dfs import BcDfs
from repro.baselines.bc_join import BcJoin
from repro.baselines.full_join import FullJoin
from repro.baselines.generic_dfs import GenericDfs
from repro.baselines.registry import available_algorithms, get_algorithm, register_algorithm
from repro.baselines.t_dfs import TDfs
from repro.baselines.yen import YenKsp

__all__ = [
    "GenericDfs",
    "BcDfs",
    "BcJoin",
    "TDfs",
    "YenKsp",
    "FullJoin",
    "get_algorithm",
    "available_algorithms",
    "register_algorithm",
]
