"""Chain-join evaluation on the fully-reduced relations (Algorithm 2 + left-deep join).

This baseline takes the join-based model literally: it materialises the
relations ``R_1 .. R_k`` of Section 3.1, removes dangling tuples with the
full reducer and then evaluates the chain join with a left-deep strategy,
emitting every tuple that corresponds to a simple path (Theorem 3.1).

It exists to quantify the cost of relation construction that motivates the
light-weight index (Section 4.2): pruning power is essentially identical to
the index (Appendix B), but the construction scans the graph and every
relation several times.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.algorithm import Algorithm, timed_run
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.relations import ChainRelations, build_relations
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph

__all__ = ["FullJoin"]


class FullJoin(Algorithm):
    """Left-deep evaluation of the fully-reduced chain join."""

    name = "FullJoin"

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        query.validate(graph)

        def body(collector: ResultCollector, deadline: Deadline, stats: EnumerationStats) -> None:
            build_started = time.perf_counter()
            relations = build_relations(graph, query, deadline=deadline)
            stats.add_phase(Phase.INDEX, time.perf_counter() - build_started)
            stats.index_edges = relations.total_tuples()

            enumeration_started = time.perf_counter()
            try:
                _evaluate(relations, query, collector, deadline, stats)
            finally:
                stats.add_phase(Phase.ENUMERATION, time.perf_counter() - enumeration_started)

        return timed_run(self.name, query, config, body)


def _evaluate(
    relations: ChainRelations,
    query: Query,
    collector: ResultCollector,
    deadline: Deadline,
    stats: EnumerationStats,
) -> None:
    """Left-deep join emitting simple paths directly.

    The join variable ordering is the natural chain order ``u_0, ..., u_k``;
    because relation ``R_i`` is grouped by its source attribute the evaluation
    is a DFS over the reduced relations, with the duplicate-vertex check
    applied on the fly (only the ``(t, t)`` padding may repeat).
    """
    s, t, k = query.source, query.target, query.k
    adjacency: List[Dict[int, List[int]]] = [relations[i].adjacency() for i in range(1, k + 1)]
    path = [s]
    on_path = {s}

    def recurse(position: int) -> None:
        deadline.check()
        v = path[-1]
        if v == t:
            collector.emit(path)
            return
        if position > k:
            return
        candidates = adjacency[position - 1].get(v, ())
        stats.edges_accessed += len(candidates)
        for v_next in candidates:
            if v_next in on_path:
                continue
            stats.partial_results_generated += 1
            path.append(v_next)
            on_path.add(v_next)
            try:
                recurse(position + 1)
            finally:
                path.pop()
                on_path.discard(v_next)

    recurse(1)
