"""T-DFS: certification-based polynomial-delay enumeration (Rizzi et al. [33]).

Before extending the partial result ``M`` with a candidate ``v'``, T-DFS
verifies that a path from ``v'`` to ``t`` of length at most
``k - L(M) - 1`` exists in ``G - M`` (the graph without the vertices already
on the path).  Every surviving branch is therefore guaranteed to lead to at
least one result, which yields the O(k × |E|) delay bound — at the price of
one shortest-path query per candidate, the overhead the PathEnum paper
identifies as the reason these theoretical algorithms lose in practice.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Optional, Set

from repro.core.algorithm import Algorithm, timed_run
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph

__all__ = ["TDfs"]


class TDfs(Algorithm):
    """Per-step certified DFS (the paper's T-DFS baseline)."""

    name = "T-DFS"

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        query.validate(graph)

        def body(collector: ResultCollector, deadline: Deadline, stats: EnumerationStats) -> None:
            enumeration_started = time.perf_counter()
            try:
                _search(graph, query, collector, deadline, stats)
            finally:
                stats.add_phase(Phase.ENUMERATION, time.perf_counter() - enumeration_started)

        return timed_run(self.name, query, config, body)


def _reachable_within(
    graph: DiGraph, source: int, target: int, budget: int, blocked: Set[int], stats: EnumerationStats
) -> bool:
    """Is there a path ``source -> target`` of length <= budget avoiding ``blocked``?"""
    if source == target:
        return True
    if budget <= 0:
        return False
    visited = {source}
    queue = deque([(source, 0)])
    while queue:
        v, depth = queue.popleft()
        if depth >= budget:
            continue
        neighbors = graph.neighbors(v)
        stats.edges_accessed += len(neighbors)
        for w in neighbors:
            w = int(w)
            if w == target:
                return True
            if w in blocked or w in visited:
                continue
            visited.add(w)
            queue.append((w, depth + 1))
    return False


def _search(
    graph: DiGraph,
    query: Query,
    collector: ResultCollector,
    deadline: Deadline,
    stats: EnumerationStats,
) -> None:
    s, t, k = query.source, query.target, query.k
    path = [s]
    on_path = {s}

    def recurse() -> int:
        deadline.check()
        v = path[-1]
        if v == t:
            collector.emit(path)
            return 1
        used = len(path) - 1
        budget = k - used - 1
        found = 0
        neighbors = graph.neighbors(v)
        stats.edges_accessed += len(neighbors)
        for v_next in neighbors:
            v_next = int(v_next)
            if v_next in on_path:
                continue
            # Certification step: v_next must still reach t within the budget
            # while avoiding the vertices already on the path.
            if not _reachable_within(graph, v_next, t, budget, on_path, stats):
                continue
            stats.partial_results_generated += 1
            path.append(v_next)
            on_path.add(v_next)
            try:
                sub_found = recurse()
            finally:
                path.pop()
                on_path.discard(v_next)
            if sub_found == 0:
                stats.invalid_partial_results += 1
            found += sub_found
        return found

    recurse()
