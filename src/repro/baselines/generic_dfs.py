"""The generic backtracking framework (Algorithm 1 of the paper).

Before enumeration a single reverse BFS from ``t`` fills ``B(v)``, the
distance from every vertex to the target.  The search then extends the
partial result ``M`` over the raw adjacency lists of ``G``, pruning a
candidate ``v'`` when it is already on the path or when
``L(M) + 1 + B(v') > k``.

This is the common skeleton that BC-DFS and T-DFS refine with extra pruning;
on its own it is complete and correct but offers no polynomial-delay
guarantee.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.algorithm import Algorithm, timed_run
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded

__all__ = ["GenericDfs"]


class GenericDfs(Algorithm):
    """Algorithm 1: DFS with static distance-to-target pruning."""

    name = "GenericDFS"

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        query.validate(graph)

        def body(collector: ResultCollector, deadline: Deadline, stats: EnumerationStats) -> None:
            bfs_started = time.perf_counter()
            dist_to_t = bfs_distances_bounded(
                graph, query.target, cutoff=query.k, reverse=True
            )
            stats.add_phase(Phase.BFS, time.perf_counter() - bfs_started)

            enumeration_started = time.perf_counter()
            try:
                _search(graph, query, dist_to_t, collector, deadline, stats)
            finally:
                stats.add_phase(Phase.ENUMERATION, time.perf_counter() - enumeration_started)

        return timed_run(self.name, query, config, body)


def _search(
    graph: DiGraph,
    query: Query,
    dist_to_t: np.ndarray,
    collector: ResultCollector,
    deadline: Deadline,
    stats: EnumerationStats,
) -> None:
    s, t, k = query.source, query.target, query.k
    path = [s]
    on_path = {s}

    def recurse() -> int:
        deadline.check()
        v = path[-1]
        if v == t:
            collector.emit(path)
            return 1
        length = len(path) - 1
        found = 0
        neighbors = graph.neighbors(v)
        stats.edges_accessed += len(neighbors)
        for v_next in neighbors:
            v_next = int(v_next)
            if v_next in on_path:
                continue
            barrier = int(dist_to_t[v_next])
            if barrier == UNREACHABLE or length + 1 + barrier > k:
                continue
            stats.partial_results_generated += 1
            path.append(v_next)
            on_path.add(v_next)
            try:
                sub_found = recurse()
            finally:
                path.pop()
                on_path.discard(v_next)
            if sub_found == 0:
                stats.invalid_partial_results += 1
            found += sub_found
        return found

    recurse()
