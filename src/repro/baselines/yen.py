"""Top-K shortest loopless paths adapter (Yen's algorithm).

Section 2.3 of the paper discusses evaluating ``q(s, t, k)`` with a top-K
shortest path algorithm: enumerate simple paths in ascending length order
and stop once the next path would exceed ``k`` hops.  This adapter
implements Yen's algorithm on the unweighted graph (BFS shortest paths) and
terminates on the hop constraint, so it produces exactly the HcPE result
set — just in a length-sorted order the problem never asked for, which is
the overhead the paper points out.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Tuple

from repro.core.algorithm import Algorithm, timed_run
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph
from repro.graph.traversal import shortest_path

__all__ = ["YenKsp"]

Path = Tuple[int, ...]


class YenKsp(Algorithm):
    """Hop-bounded path enumeration via Yen's top-K shortest paths."""

    name = "Yen-KSP"

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        query.validate(graph)

        def body(collector: ResultCollector, deadline: Deadline, stats: EnumerationStats) -> None:
            enumeration_started = time.perf_counter()
            try:
                _yen(graph, query, collector, deadline, stats)
            finally:
                stats.add_phase(Phase.ENUMERATION, time.perf_counter() - enumeration_started)

        return timed_run(self.name, query, config, body)


def _yen(
    graph: DiGraph,
    query: Query,
    collector: ResultCollector,
    deadline: Deadline,
    stats: EnumerationStats,
) -> None:
    s, t, k = query.source, query.target, query.k
    first = shortest_path(graph, s, t)
    if first is None or len(first) - 1 > k:
        return
    accepted: List[Path] = [tuple(first)]
    collector.emit(first)
    # Candidate heap keyed by (length, path) for deterministic order.
    candidates: List[Tuple[int, Path]] = []
    seen_candidates = {tuple(first)}

    while True:
        deadline.check()
        previous = accepted[-1]
        # Spur from every prefix of the previously accepted path.
        for spur_index in range(len(previous) - 1):
            deadline.check()
            root = previous[: spur_index + 1]
            spur_vertex = root[-1]
            # Vertices of the root (except the spur vertex) must not reappear.
            blocked_vertices = set(root[:-1])
            # Edges leaving the spur vertex that previous accepted paths with
            # the same root already used must be skipped to avoid duplicates.
            blocked_edges = set()
            for path in accepted:
                if len(path) > spur_index and path[: spur_index + 1] == root:
                    blocked_edges.add((path[spur_index], path[spur_index + 1]))
            spur = _shortest_path_avoiding(
                graph, spur_vertex, t, blocked_vertices, blocked_edges, stats
            )
            if spur is None:
                continue
            candidate = root[:-1] + tuple(spur)
            if len(candidate) - 1 > k:
                continue
            if candidate in seen_candidates:
                continue
            seen_candidates.add(candidate)
            heapq.heappush(candidates, (len(candidate) - 1, candidate))
        if not candidates:
            return
        length, best = heapq.heappop(candidates)
        if length > k:
            return
        accepted.append(best)
        collector.emit(best)
        stats.partial_results_generated += 1


def _shortest_path_avoiding(
    graph: DiGraph,
    source: int,
    target: int,
    blocked_vertices,
    blocked_edges,
    stats: EnumerationStats,
) -> Optional[Path]:
    """BFS shortest path avoiding the given vertices and edges."""
    if source == target:
        return (source,)
    from collections import deque

    parent = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        neighbors = graph.neighbors(v)
        stats.edges_accessed += len(neighbors)
        for w in neighbors:
            w = int(w)
            if w in blocked_vertices or (v, w) in blocked_edges or w in parent:
                continue
            parent[w] = v
            if w == target:
                path = [w]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                path.reverse()
                return tuple(path)
            queue.append(w)
    return None
