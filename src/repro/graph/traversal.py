"""Breadth-first traversals used for index construction and baselines.

The paper relies on BFS in three places:

* Algorithm 3 performs one BFS from ``s`` on ``G - {t}`` and one BFS from
  ``t`` on the reversed graph ``G^r - {s}`` to obtain ``v.s`` and ``v.t``.
* BC-DFS / T-DFS use single-source distances to ``t`` for pruning.
* Query generation requires ``S(s, t) <= 3`` to guarantee non-empty result
  sets.

All functions operate on internal vertex ids and accept an optional
``excluded`` vertex which is treated as removed from the graph (``G - {v}``),
avoiding materialising vertex-deleted copies in hot paths.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.digraph import DiGraph, _ragged_positions, ragged_targets

__all__ = [
    "UNREACHABLE",
    "bfs_distances",
    "bfs_distances_bounded",
    "multi_source_bfs_distances_bounded",
    "distance",
    "has_path_within",
    "shortest_path",
]

#: Sentinel distance for vertices that cannot be reached.
UNREACHABLE: int = -1


def bfs_distances(
    graph: DiGraph,
    source: int,
    *,
    reverse: bool = False,
    excluded: Optional[int] = None,
    no_expand: Optional[int] = None,
) -> np.ndarray:
    """Single-source unweighted distances from ``source``.

    When ``reverse`` is true the traversal follows in-edges, i.e. it computes
    the distance *to* ``source`` along the original edge directions.  The
    optional ``excluded`` vertex is skipped entirely, which implements the
    ``G - {v}`` semantics of the paper without copying the graph.  The
    optional ``no_expand`` vertex can receive a distance but is never
    expanded — this is the "no intermediate s / t" semantics of walks from
    ``s`` to ``t`` (Definition 2.1) used by the light-weight index.

    Returns an ``int64`` array of length ``|V|`` with :data:`UNREACHABLE` for
    vertices that cannot be reached.
    """
    return bfs_distances_bounded(
        graph, source, cutoff=None, reverse=reverse, excluded=excluded, no_expand=no_expand
    )


def bfs_distances_bounded(
    graph: DiGraph,
    source: int,
    *,
    cutoff: Optional[int] = None,
    reverse: bool = False,
    excluded: Optional[int] = None,
    no_expand: Optional[int] = None,
    edge_filter=None,
) -> np.ndarray:
    """Like :func:`bfs_distances` but stops expanding beyond ``cutoff`` hops.

    Bounding the traversal at ``k`` hops is what keeps index construction
    cheap on large graphs: vertices further than ``k`` from ``s`` or ``t``
    can never participate in a result.  ``edge_filter(u, v)`` (ids in the
    *original* edge direction, regardless of ``reverse``) can drop edges on
    the fly, which is how predicate constraints restrict the traversal
    without materialising a filtered graph.

    Unfiltered traversals take a vectorised level-synchronous path over the
    CSR arrays (one ragged gather per BFS level); the per-edge Python loop
    only remains for the ``edge_filter`` case, where a Python callback has
    to see every edge anyway.
    """
    graph._check_vertex(source)
    if edge_filter is None:
        return _bfs_levels_vectorised(
            graph, source, cutoff=cutoff, reverse=reverse,
            excluded=excluded, no_expand=no_expand,
        )
    n = graph.num_vertices
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    if excluded is not None and excluded == source:
        return dist
    dist[source] = 0
    queue: deque = deque([source])
    neighbor_fn = graph.in_neighbors if reverse else graph.neighbors
    while queue:
        v = queue.popleft()
        if no_expand is not None and v == no_expand and v != source:
            continue
        d = int(dist[v])
        if cutoff is not None and d >= cutoff:
            continue
        for w in neighbor_fn(v):
            w = int(w)
            if w == excluded:
                continue
            if edge_filter is not None:
                u_orig, w_orig = (w, v) if reverse else (v, w)
                if not edge_filter(u_orig, w_orig):
                    continue
            if dist[w] == UNREACHABLE:
                dist[w] = d + 1
                queue.append(w)
    return dist


def _bfs_levels_vectorised(
    graph: DiGraph,
    source: int,
    *,
    cutoff: Optional[int],
    reverse: bool,
    excluded: Optional[int],
    no_expand: Optional[int],
) -> np.ndarray:
    """Level-synchronous BFS over the CSR arrays (no per-edge Python loop)."""
    indptr, indices = graph.in_csr() if reverse else graph.out_csr()
    n = graph.num_vertices
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    if excluded is not None and excluded == source:
        return dist
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    while len(frontier) and (cutoff is None or depth < cutoff):
        if no_expand is not None and depth > 0:
            frontier = frontier[frontier != no_expand]
            if not len(frontier):
                break
        reached = ragged_targets(indptr, indices, frontier)
        if not len(reached):
            break
        reached = reached[dist[reached] == UNREACHABLE]
        if excluded is not None:
            reached = reached[reached != excluded]
        frontier = np.unique(reached)
        depth += 1
        dist[frontier] = depth
    return dist


#: Sources per sweep of :func:`multi_source_bfs_distances_bounded`.  Chunking
#: caps the live distance sub-matrix at ``32 * |V| * 8`` bytes, which keeps
#: the per-level scans cache-resident; larger groups gain nothing past the
#: point where numpy call overhead is amortised.
DEFAULT_SOURCE_CHUNK = 32


def multi_source_bfs_distances_bounded(
    graph: DiGraph,
    sources: Sequence[int],
    *,
    cutoff: int,
    reverse: bool = False,
    no_expand: Optional[int] = None,
    chunk_sources: Optional[int] = DEFAULT_SOURCE_CHUNK,
) -> np.ndarray:
    """Bounded BFS distances from several sources in one synchronous sweep.

    Returns an ``(len(sources), |V|)`` int64 matrix whose row ``i`` equals
    ``bfs_distances_bounded(graph, sources[i], cutoff=cutoff, reverse=reverse,
    no_expand=no_expand)`` exactly — BFS distances are unique, so the level
    order cannot differ.  All sources advance level by level through *one*
    set of numpy operations per level, which amortises the per-call numpy
    overhead that dominates single-source BFS on small frontiers.  This is
    the group preprocessing step of the target-sharded batch executor: every
    query of a shard shares ``(target, k)``, so their forward BFS trees
    (``no_expand=target``) can be grown together.

    Sweeps run over ``chunk_sources`` rows at a time (rows are mutually
    independent, so chunking cannot change any row); ``None`` disables
    chunking.
    """
    indptr, indices = graph.in_csr() if reverse else graph.out_csr()
    n = graph.num_vertices
    source_array = np.asarray(sources, dtype=np.int64)
    num_sources = len(source_array)
    dist = np.full((num_sources, n), UNREACHABLE, dtype=np.int64)
    if num_sources == 0:
        return dist
    for s in source_array:
        graph._check_vertex(int(s))
    step = num_sources if chunk_sources is None else max(1, int(chunk_sources))
    for start in range(0, num_sources, step):
        _multi_source_sweep(
            indptr,
            indices,
            dist[start : start + step],
            source_array[start : start + step],
            cutoff=cutoff,
            no_expand=no_expand,
        )
    return dist


def _multi_source_sweep(
    indptr: np.ndarray,
    indices: np.ndarray,
    dist: np.ndarray,
    sources: np.ndarray,
    *,
    cutoff: int,
    no_expand: Optional[int],
) -> None:
    """Level-synchronous sweep filling one chunk of the distance matrix."""
    dist[np.arange(len(sources), dtype=np.int64), sources] = 0
    # The frontier is re-derived from the distance matrix each level
    # (``dist == depth``), which both deduplicates (source, vertex) pairs
    # discovered through several edges — the level write is idempotent — and
    # avoids an O(frontier log frontier) unique per level.  A full-matrix
    # scan is a predictable sequential pass, far cheaper than hashing the
    # combined frontiers once the group grows.
    frontier_rows, frontier_cols = np.nonzero(dist == 0)
    depth = 0
    while len(frontier_cols) and depth < cutoff:
        if no_expand is not None and depth > 0:
            keep = frontier_cols != no_expand
            frontier_rows = frontier_rows[keep]
            frontier_cols = frontier_cols[keep]
            if not len(frontier_cols):
                break
        positions, degrees = _ragged_positions(indptr, frontier_cols)
        if not len(positions):
            break
        reached_rows = np.repeat(frontier_rows, degrees)
        reached_cols = indices[positions]
        unvisited = dist[reached_rows, reached_cols] == UNREACHABLE
        reached_rows = reached_rows[unvisited]
        reached_cols = reached_cols[unvisited]
        if not len(reached_cols):
            break
        depth += 1
        dist[reached_rows, reached_cols] = depth
        frontier_rows, frontier_cols = np.nonzero(dist == depth)


def distance(
    graph: DiGraph,
    source: int,
    target: int,
    *,
    excluded: Optional[int] = None,
    cutoff: Optional[int] = None,
) -> int:
    """Length of the shortest path ``S(source, target | G - {excluded})``.

    Returns :data:`UNREACHABLE` when no path exists (or none within
    ``cutoff`` hops).  Uses an early-exit BFS rather than the full
    single-source computation.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return 0
    if excluded is not None and excluded in (source, target):
        return UNREACHABLE
    visited = {source}
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        if cutoff is not None and depth > cutoff:
            return UNREACHABLE
        next_frontier: List[int] = []
        for v in frontier:
            for w in graph.neighbors(v):
                w = int(w)
                if w == excluded or w in visited:
                    continue
                if w == target:
                    return depth
                visited.add(w)
                next_frontier.append(w)
        frontier = next_frontier
    return UNREACHABLE


def has_path_within(
    graph: DiGraph,
    source: int,
    target: int,
    max_hops: int,
    *,
    excluded: Optional[int] = None,
) -> bool:
    """``True`` when a path of length at most ``max_hops`` exists."""
    d = distance(graph, source, target, excluded=excluded, cutoff=max_hops)
    return d != UNREACHABLE and d <= max_hops


def shortest_path(
    graph: DiGraph,
    source: int,
    target: int,
    *,
    excluded: Optional[int] = None,
    forbidden: Optional[Sequence[int]] = None,
) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target`` as a vertex list.

    ``forbidden`` vertices are treated as removed (in addition to
    ``excluded``); T-DFS uses this to certify that a partial result can still
    be extended into a full result.  Returns ``None`` when no path exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    banned = set(forbidden or ())
    if excluded is not None:
        banned.add(excluded)
    if source in banned or target in banned:
        return None
    if source == target:
        return [source]
    parent = {source: source}
    queue: deque = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            w = int(w)
            if w in banned or w in parent:
                continue
            parent[w] = v
            if w == target:
                path = [w]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(w)
    return None
