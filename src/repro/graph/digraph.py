"""Immutable CSR-encoded directed graph.

The paper's algorithms traverse the graph in two directions: forwards during
enumeration and backwards (on the reversed graph) when computing distances to
the target.  :class:`DiGraph` therefore stores both the out-adjacency and the
in-adjacency in compressed sparse row (CSR) form:

* ``out_indptr`` / ``out_indices`` — for vertex ``v`` the out-neighbours are
  ``out_indices[out_indptr[v]:out_indptr[v + 1]]``;
* ``in_indptr`` / ``in_indices`` — likewise for in-neighbours.

Vertices are dense integers ``0 .. n - 1``.  The optional ``vertex_ids``
sequence maps internal ids back to the external ids used when the graph was
built (account numbers, entity names, ...), and :meth:`DiGraph.to_internal` /
:meth:`DiGraph.to_external` translate between the two.

Edges may carry a float weight and a string label; both are optional and are
stored aligned with ``out_indices`` so that constraint-aware enumeration
(Appendix E of the paper) can read them without a hash lookup per edge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError

__all__ = ["DiGraph"]


class DiGraph:
    """An immutable directed graph in CSR form.

    Instances are normally produced by :class:`repro.graph.builder.GraphBuilder`
    or by the generators; the constructor below accepts already validated CSR
    arrays and is considered an implementation detail of those factories.
    """

    __slots__ = (
        "_num_vertices",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
        "_edge_weights",
        "_edge_labels",
        "_vertex_ids",
        "_id_index",
        "_edge_position",
    )

    def __init__(
        self,
        num_vertices: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        *,
        edge_weights: Optional[np.ndarray] = None,
        edge_labels: Optional[Sequence[Optional[str]]] = None,
        vertex_ids: Optional[Sequence[Hashable]] = None,
    ) -> None:
        if num_vertices < 0:
            raise GraphError("number of vertices must be non-negative")
        if len(out_indptr) != num_vertices + 1 or len(in_indptr) != num_vertices + 1:
            raise GraphError("indptr arrays must have length num_vertices + 1")
        if out_indptr[-1] != len(out_indices):
            raise GraphError("out_indptr is inconsistent with out_indices")
        if in_indptr[-1] != len(in_indices):
            raise GraphError("in_indptr is inconsistent with in_indices")
        if len(out_indices) != len(in_indices):
            raise GraphError("out and in adjacency encode different edge counts")
        if edge_weights is not None and len(edge_weights) != len(out_indices):
            raise GraphError("edge_weights must align with out_indices")
        if edge_labels is not None and len(edge_labels) != len(out_indices):
            raise GraphError("edge_labels must align with out_indices")
        if vertex_ids is not None and len(vertex_ids) != num_vertices:
            raise GraphError("vertex_ids must have one entry per vertex")

        self._num_vertices = int(num_vertices)
        self._out_indptr = np.asarray(out_indptr, dtype=np.int64)
        self._out_indices = np.asarray(out_indices, dtype=np.int64)
        self._in_indptr = np.asarray(in_indptr, dtype=np.int64)
        self._in_indices = np.asarray(in_indices, dtype=np.int64)
        self._edge_weights = (
            None if edge_weights is None else np.asarray(edge_weights, dtype=np.float64)
        )
        self._edge_labels = None if edge_labels is None else list(edge_labels)
        self._vertex_ids = None if vertex_ids is None else list(vertex_ids)
        self._id_index: Optional[Dict[Hashable, int]] = None
        if self._vertex_ids is not None:
            self._id_index = {vid: i for i, vid in enumerate(self._vertex_ids)}
        self._edge_position: Optional[Dict[Tuple[int, int], int]] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V(G)|``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E(G)|``."""
        return int(self._out_indptr[-1])

    def __len__(self) -> int:
        return self._num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

    def vertices(self) -> range:
        """Iterate over the internal vertex ids ``0 .. n - 1``."""
        return range(self._num_vertices)

    def has_vertex(self, v: int) -> bool:
        """Return ``True`` when ``v`` is a valid internal vertex id."""
        return 0 <= v < self._num_vertices

    def _check_vertex(self, v: int) -> None:
        if not self.has_vertex(v):
            raise VertexNotFoundError(v)

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #
    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbours ``N(v)`` as a read-only numpy view."""
        self._check_vertex(v)
        return self._out_indices[self._out_indptr[v] : self._out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbours of ``v`` (out-neighbours in the reversed graph)."""
        self._check_vertex(v)
        return self._in_indices[self._in_indptr[v] : self._in_indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        """Out-degree ``d(v)``."""
        self._check_vertex(v)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        self._check_vertex(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def degree(self, v: int) -> int:
        """Total degree (in + out) of ``v``."""
        return self.out_degree(v) + self.in_degree(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the directed edge ``(u, v)`` exists."""
        if not self.has_vertex(u) or not self.has_vertex(v):
            return False
        return self._edge_index(u, v) is not None

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed edges as ``(u, v)`` pairs."""
        indptr = self._out_indptr
        indices = self._out_indices
        for u in range(self._num_vertices):
            for pos in range(indptr[u], indptr[u + 1]):
                yield u, int(indices[pos])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for every vertex."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for every vertex."""
        return np.diff(self._in_indptr)

    # ------------------------------------------------------------------ #
    # edge attributes
    # ------------------------------------------------------------------ #
    def _build_edge_position(self) -> Dict[Tuple[int, int], int]:
        positions: Dict[Tuple[int, int], int] = {}
        indptr = self._out_indptr
        indices = self._out_indices
        for u in range(self._num_vertices):
            for pos in range(int(indptr[u]), int(indptr[u + 1])):
                positions[(u, int(indices[pos]))] = pos
        return positions

    def _edge_index(self, u: int, v: int) -> Optional[int]:
        if self._edge_position is None:
            self._edge_position = self._build_edge_position()
        return self._edge_position.get((u, v))

    @property
    def has_edge_weights(self) -> bool:
        """``True`` when the graph was built with per-edge weights."""
        return self._edge_weights is not None

    @property
    def has_edge_labels(self) -> bool:
        """``True`` when the graph was built with per-edge labels."""
        return self._edge_labels is not None

    def edge_weight(self, u: int, v: int, default: Optional[float] = None) -> float:
        """Weight of edge ``(u, v)``.

        Raises :class:`EdgeNotFoundError` when the edge does not exist and no
        ``default`` is given.  Unweighted graphs report a weight of ``1.0``
        for every existing edge so accumulative-value constraints degrade
        gracefully to hop counting.
        """
        pos = self._edge_index(u, v) if (self.has_vertex(u) and self.has_vertex(v)) else None
        if pos is None:
            if default is not None:
                return default
            raise EdgeNotFoundError(u, v)
        if self._edge_weights is None:
            return 1.0
        return float(self._edge_weights[pos])

    def edge_label(self, u: int, v: int, default: Optional[str] = None) -> Optional[str]:
        """Label of edge ``(u, v)`` or ``default`` / ``None`` when unlabelled."""
        pos = self._edge_index(u, v) if (self.has_vertex(u) and self.has_vertex(v)) else None
        if pos is None:
            if default is not None:
                return default
            raise EdgeNotFoundError(u, v)
        if self._edge_labels is None:
            return default
        return self._edge_labels[pos]

    def edge_weight_by_position(self, position: int) -> float:
        """Weight of the edge stored at CSR ``position`` (fast path for hot loops)."""
        if self._edge_weights is None:
            return 1.0
        return float(self._edge_weights[position])

    # ------------------------------------------------------------------ #
    # external ids
    # ------------------------------------------------------------------ #
    @property
    def has_external_ids(self) -> bool:
        """``True`` when the builder recorded external vertex identifiers."""
        return self._vertex_ids is not None

    def to_internal(self, external_id: Hashable) -> int:
        """Translate an external vertex id into the internal dense id."""
        if self._id_index is None:
            if isinstance(external_id, (int, np.integer)) and self.has_vertex(int(external_id)):
                return int(external_id)
            raise VertexNotFoundError(external_id)
        try:
            return self._id_index[external_id]
        except KeyError:
            raise VertexNotFoundError(external_id) from None

    def to_external(self, internal_id: int) -> Hashable:
        """Translate an internal dense id back to the external id."""
        self._check_vertex(internal_id)
        if self._vertex_ids is None:
            return internal_id
        return self._vertex_ids[internal_id]

    def translate_path(self, path: Sequence[int]) -> Tuple[Hashable, ...]:
        """Translate a path of internal ids into external ids."""
        return tuple(self.to_external(v) for v in path)

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def reverse(self) -> "DiGraph":
        """Return ``G^r``, the graph with every edge direction flipped.

        Edge weights and labels are dropped: the reverse graph is only used
        for distance computations, which do not consult them.
        """
        return DiGraph(
            self._num_vertices,
            self._in_indptr.copy(),
            self._in_indices.copy(),
            self._out_indptr.copy(),
            self._out_indices.copy(),
            vertex_ids=None if self._vertex_ids is None else list(self._vertex_ids),
        )

    def filter_edges(self, predicate) -> "DiGraph":
        """Return a copy that keeps only edges for which ``predicate`` is true.

        ``predicate(u, v, weight, label)`` is evaluated for every edge with
        internal ids.  Vertex ids and external-id mapping are preserved so
        queries keep working on the filtered graph — this is the materialised
        form of the predicate-constrained evaluation of Appendix E.
        """
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        for v in range(self._num_vertices):
            builder.add_vertex(self.to_external(v) if self._vertex_ids is not None else v)
        for u in range(self._num_vertices):
            start, stop = int(self._out_indptr[u]), int(self._out_indptr[u + 1])
            for pos in range(start, stop):
                v = int(self._out_indices[pos])
                weight = None if self._edge_weights is None else float(self._edge_weights[pos])
                label = None if self._edge_labels is None else self._edge_labels[pos]
                if predicate(u, v, 1.0 if weight is None else weight, label):
                    builder.add_edge(
                        self.to_external(u) if self._vertex_ids is not None else u,
                        self.to_external(v) if self._vertex_ids is not None else v,
                        weight=weight,
                        label=label,
                    )
        return builder.build()

    def edge_list(self) -> Iterable[Tuple[int, int]]:
        """Materialise the edge list as a list of ``(u, v)`` tuples."""
        return list(self.edges())

    def copy_with_edges(self, extra_edges: Iterable[Tuple[int, int]]) -> "DiGraph":
        """Return a new graph with ``extra_edges`` added (ids are internal)."""
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        for v in range(self._num_vertices):
            builder.add_vertex(v)
        for u, v in self.edges():
            builder.add_edge(u, v)
        for u, v in extra_edges:
            builder.add_edge(int(u), int(v))
        return builder.build()
