"""Immutable CSR-encoded directed graph.

The paper's algorithms traverse the graph in two directions: forwards during
enumeration and backwards (on the reversed graph) when computing distances to
the target.  :class:`DiGraph` therefore stores both the out-adjacency and the
in-adjacency in compressed sparse row (CSR) form:

* ``out_indptr`` / ``out_indices`` — for vertex ``v`` the out-neighbours are
  ``out_indices[out_indptr[v]:out_indptr[v + 1]]``;
* ``in_indptr`` / ``in_indices`` — likewise for in-neighbours.

Vertices are dense integers ``0 .. n - 1``.  The optional ``vertex_ids``
sequence maps internal ids back to the external ids used when the graph was
built (account numbers, entity names, ...), and :meth:`DiGraph.to_internal` /
:meth:`DiGraph.to_external` translate between the two.

Edges may carry a float weight and a string label; both are optional and are
stored aligned with ``out_indices`` so that constraint-aware enumeration
(Appendix E of the paper) can read them without a hash lookup per edge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.store import GraphStore, SharedMemoryStore, StoreHandle, open_store

__all__ = ["DiGraph", "ragged_gather", "ragged_targets"]

_EMPTY = np.empty(0, dtype=np.int64)


def _ragged_positions(indptr: np.ndarray, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CSR slot positions of every edge leaving ``rows``, plus the degrees."""
    starts = indptr[rows]
    degrees = indptr[rows + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return _EMPTY, degrees
    shifts = np.cumsum(degrees) - degrees
    positions = np.repeat(starts - shifts, degrees) + np.arange(total, dtype=np.int64)
    return positions, degrees


def ragged_gather(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand CSR ``rows`` into parallel ``(source, target)`` edge arrays.

    The vectorised equivalent of ``for u in rows: for v in neighbors(u)``,
    shared by the index builder and the level-synchronous BFS.
    """
    positions, degrees = _ragged_positions(indptr, rows)
    if len(positions) == 0:
        return _EMPTY, _EMPTY
    return np.repeat(rows, degrees), indices[positions]


def ragged_targets(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Like :func:`ragged_gather` but without materialising the sources."""
    positions, _ = _ragged_positions(indptr, rows)
    if len(positions) == 0:
        return _EMPTY
    return indices[positions]


def _rows_sorted(indptr: np.ndarray, indices: np.ndarray) -> bool:
    """``True`` when every CSR row of ``indices`` is sorted ascending.

    Sorted rows are the invariant behind the binary-search edge lookup
    (:meth:`DiGraph._edge_index`); :class:`~repro.graph.builder.GraphBuilder`
    guarantees it by lexsorting edges at build time.
    """
    if len(indices) < 2:
        return True
    non_decreasing = indices[1:] >= indices[:-1]
    # Positions where a new row begins are exempt from the comparison.
    boundaries = indptr[1:-1]
    boundaries = boundaries[(boundaries > 0) & (boundaries < len(indices))]
    non_decreasing[boundaries - 1] = True
    return bool(non_decreasing.all())


class DiGraph:
    """An immutable directed graph in CSR form.

    Instances are normally produced by :class:`repro.graph.builder.GraphBuilder`
    or by the generators; the constructor below accepts already validated CSR
    arrays and is considered an implementation detail of those factories.
    """

    __slots__ = (
        "_num_vertices",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
        "_edge_weights",
        "_edge_labels",
        "_vertex_ids",
        "_id_index",
        "_store",
        "_reverse_view",
    )

    def __init__(
        self,
        num_vertices: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        *,
        edge_weights: Optional[np.ndarray] = None,
        edge_labels: Optional[Sequence[Optional[str]]] = None,
        vertex_ids: Optional[Sequence[Hashable]] = None,
        store: Optional[Union[str, GraphStore]] = None,
    ) -> None:
        if num_vertices < 0:
            raise GraphError("number of vertices must be non-negative")
        if len(out_indptr) != num_vertices + 1 or len(in_indptr) != num_vertices + 1:
            raise GraphError("indptr arrays must have length num_vertices + 1")
        if out_indptr[-1] != len(out_indices):
            raise GraphError("out_indptr is inconsistent with out_indices")
        if in_indptr[-1] != len(in_indices):
            raise GraphError("in_indptr is inconsistent with in_indices")
        if len(out_indices) != len(in_indices):
            raise GraphError("out and in adjacency encode different edge counts")
        if edge_weights is not None and len(edge_weights) != len(out_indices):
            raise GraphError("edge_weights must align with out_indices")
        if edge_labels is not None and len(edge_labels) != len(out_indices):
            raise GraphError("edge_labels must align with out_indices")
        if vertex_ids is not None and len(vertex_ids) != num_vertices:
            raise GraphError("vertex_ids must have one entry per vertex")

        self._num_vertices = int(num_vertices)
        self._out_indptr = np.asarray(out_indptr, dtype=np.int64)
        self._out_indices = np.asarray(out_indices, dtype=np.int64)
        self._in_indptr = np.asarray(in_indptr, dtype=np.int64)
        self._in_indices = np.asarray(in_indices, dtype=np.int64)
        self._edge_weights = (
            None if edge_weights is None else np.asarray(edge_weights, dtype=np.float64)
        )
        self._edge_labels = None if edge_labels is None else list(edge_labels)
        self._vertex_ids = None if vertex_ids is None else list(vertex_ids)
        self._id_index: Optional[Dict[Hashable, int]] = None
        if self._vertex_ids is not None:
            self._id_index = {vid: i for i, vid in enumerate(self._vertex_ids)}
        if not _rows_sorted(self._out_indptr, self._out_indices):
            raise GraphError(
                "out-adjacency rows must be sorted ascending; build graphs "
                "through GraphBuilder, which guarantees the invariant"
            )
        self._reverse_view: Optional["DiGraph"] = None
        self._store: Optional[GraphStore] = None
        if isinstance(store, GraphStore):
            self._bind_store(store)
        elif store is not None and store != "heap":
            self._bind_store(open_store(store, self._csr_arrays(), self._store_meta()))

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V(G)|``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E(G)|``."""
        return int(self._out_indptr[-1])

    def __len__(self) -> int:
        return self._num_vertices

    def __repr__(self) -> str:
        extras = []
        if self.has_edge_weights:
            extras.append("weighted")
        if self.has_edge_labels:
            extras.append("labeled")
        if self.has_external_ids:
            extras.append("external_ids")
        suffix = f", {'+'.join(extras)}" if extras else ""
        return (
            f"DiGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges}, "
            f"backend={self.store_backend!r}{suffix})"
        )

    # ------------------------------------------------------------------ #
    # storage backends
    # ------------------------------------------------------------------ #
    def _csr_arrays(self) -> Dict[str, np.ndarray]:
        """The numpy arrays that constitute the graph's bulk storage."""
        arrays = {
            "out_indptr": self._out_indptr,
            "out_indices": self._out_indices,
            "in_indptr": self._in_indptr,
            "in_indices": self._in_indices,
        }
        if self._edge_weights is not None:
            arrays["edge_weights"] = self._edge_weights
        return arrays

    def _store_meta(self) -> Dict[str, object]:
        """Small picklable extras that ride a store handle's pickle.

        Labels and external ids are per-element Python objects; they travel
        with the handle rather than the segment, so only the O(|V| + |E|)
        integer arrays need zero-copy treatment.
        """
        return {
            "num_vertices": self._num_vertices,
            "edge_labels": self._edge_labels,
            "vertex_ids": self._vertex_ids,
        }

    def _bind_store(self, store: GraphStore) -> None:
        """Rebind the CSR arrays to the views owned by ``store``."""
        arrays = store.arrays()
        self._out_indptr = arrays["out_indptr"]
        self._out_indices = arrays["out_indices"]
        self._in_indptr = arrays["in_indptr"]
        self._in_indices = arrays["in_indices"]
        if "edge_weights" in arrays:
            self._edge_weights = arrays["edge_weights"]
        self._store = store

    @property
    def store_backend(self) -> str:
        """Name of the storage backend holding the CSR arrays."""
        return "heap" if self._store is None else self._store.backend

    @property
    def store(self) -> Optional[GraphStore]:
        """The backing :class:`GraphStore`, or ``None`` for plain heap arrays."""
        return self._store

    def share(self) -> StoreHandle:
        """Publish the graph into shared memory and return a picklable handle.

        The first call packs the CSR arrays into one shared-memory segment
        and rebinds this graph to views of it, so the publishing process
        keeps exactly one copy of the data; later calls reuse the segment.
        Worker processes rebuild the graph with :meth:`from_handle` at the
        cost of a page-table mapping, never a copy.  The publisher owns the
        segment and must call :meth:`close_store` (with ``unlink=True``)
        when every attacher is done with it.
        """
        store = self._store
        stale = (
            store is None
            or not store.shareable
            or getattr(store, "is_unlinked", False)
        )
        if stale:
            # Also covers re-publishing after a previous segment was
            # unlinked: the old views are still readable, so packing from
            # them into a fresh segment is safe.
            self._bind_store(
                SharedMemoryStore.pack(self._csr_arrays(), self._store_meta())
            )
        return self._store.handle()

    @classmethod
    def from_handle(cls, handle: StoreHandle) -> "DiGraph":
        """Attach a graph published by :meth:`share` in another process.

        Shared-memory handles map the owner's segment; file-backed handles
        (``mmap`` / ``compressed``) re-map the snapshot, so a worker attach
        costs page tables and a header parse, never a copy.
        """
        store = handle.attach()
        return cls._from_store(store)

    @staticmethod
    def _check_store_arrays(num_vertices: int, arrays: Mapping[str, object]) -> None:
        """Cheap O(|V|) structural checks on attached store arrays.

        Database / CLI auto-sniff any file with the snapshot magic, so a
        truncated or corrupt-but-parseable snapshot must fail here with a
        clear error instead of surfacing later as wrong results or deep
        IndexErrors.  Only the indptr / length invariants are checked — the
        O(|E|) sorted-rows decode stays skipped (see :meth:`_from_store`).
        """
        if num_vertices < 0:
            raise GraphError("corrupt graph store: negative vertex count")
        out_indices = arrays["out_indices"]
        in_indices = arrays["in_indices"]
        if len(out_indices) != len(in_indices):
            raise GraphError(
                "corrupt graph store: out and in adjacency encode different "
                "edge counts"
            )
        for direction in ("out", "in"):
            indptr = np.asarray(arrays[f"{direction}_indptr"])
            if len(indptr) != num_vertices + 1:
                raise GraphError(
                    f"corrupt graph store: {direction}_indptr length does not "
                    "match the vertex count"
                )
            if int(indptr[0]) != 0 or (np.diff(indptr) < 0).any():
                raise GraphError(
                    f"corrupt graph store: {direction}_indptr is not a "
                    "monotone offset array starting at 0"
                )
            if int(indptr[-1]) != len(arrays[f"{direction}_indices"]):
                raise GraphError(
                    f"corrupt graph store: {direction}_indptr does not cover "
                    f"the {direction}_indices array (truncated snapshot?)"
                )
        weights = arrays.get("edge_weights")
        if weights is not None and len(weights) != len(out_indices):
            raise GraphError(
                "corrupt graph store: edge_weights do not align with "
                "out_indices"
            )

    @classmethod
    def _from_store(cls, store: GraphStore) -> "DiGraph":
        """Bind a graph directly to an attached store's views (trusted path).

        Snapshot writers and :meth:`share` publishers only ever emit arrays
        that already passed the constructor's invariants, so re-validating
        the sorted-rows invariant — which would force a full decode of
        compressed neighbour arrays via ``__array__`` — is skipped; the
        O(|V|) structural checks of :meth:`_check_store_arrays` still run so
        a damaged snapshot fails at attach time.
        """
        arrays = store.arrays()
        meta = getattr(store, "meta", None) or {}
        num_vertices = int(meta["num_vertices"])
        cls._check_store_arrays(num_vertices, arrays)
        graph = object.__new__(cls)
        graph._num_vertices = num_vertices
        graph._out_indptr = arrays["out_indptr"]
        graph._out_indices = arrays["out_indices"]
        graph._in_indptr = arrays["in_indptr"]
        graph._in_indices = arrays["in_indices"]
        graph._edge_weights = arrays.get("edge_weights")
        labels = meta.get("edge_labels")
        graph._edge_labels = None if labels is None else list(labels)
        ids = meta.get("vertex_ids")
        graph._vertex_ids = None if ids is None else list(ids)
        if graph._vertex_ids is not None and len(graph._vertex_ids) != num_vertices:
            raise GraphError(
                "corrupt graph store: vertex_ids do not match the vertex count"
            )
        graph._id_index = None
        if graph._vertex_ids is not None:
            graph._id_index = {vid: i for i, vid in enumerate(graph._vertex_ids)}
        graph._reverse_view = None
        graph._store = store
        return graph

    def close_store(self, *, unlink: bool = False) -> None:
        """Release the backing store mapping (no-op for heap graphs).

        After closing, the CSR views are stale — the graph must not be used
        again.  Owners pass ``unlink=True`` to also destroy the segment.
        """
        if self._store is not None:
            self._store.close(unlink=unlink)

    def memory_usage(self) -> Dict[str, object]:
        """Node/edge counts plus per-array byte accounting of the storage.

        ``arrays`` holds *stored* bytes per array (compressed size for
        block-coded neighbour arrays).  ``resident_bytes`` is what sits in
        this process's private heap / shared segment, ``mapped_bytes`` what
        is served from a memory-mapped snapshot (page cache, shared across
        processes, reclaimable).  ``logical_bytes`` is the flat-CSR
        equivalent, so ``compression_ratio = total / logical`` < 1 for
        compressed storage and 1.0 for flat backends.
        """
        file_backed = self._store is not None and getattr(self._store, "path", None) is not None
        per_array: Dict[str, int] = {}
        logical = 0
        for name, array in self._csr_arrays().items():
            per_array[name] = int(array.nbytes)
            logical += int(getattr(array, "logical_nbytes", array.nbytes))
        total = sum(per_array.values())
        return {
            "backend": self.store_backend,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "arrays": per_array,
            "total_bytes": total,
            "resident_bytes": 0 if file_backed else total,
            "mapped_bytes": total if file_backed else 0,
            "logical_bytes": logical,
            "compression_ratio": (total / logical) if logical else 1.0,
        }

    def vertices(self) -> range:
        """Iterate over the internal vertex ids ``0 .. n - 1``."""
        return range(self._num_vertices)

    def has_vertex(self, v: int) -> bool:
        """Return ``True`` when ``v`` is a valid internal vertex id."""
        return 0 <= v < self._num_vertices

    def _check_vertex(self, v: int) -> None:
        if not self.has_vertex(v):
            raise VertexNotFoundError(v)

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #
    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbours ``N(v)`` as a read-only numpy view."""
        self._check_vertex(v)
        return self._out_indices[self._out_indptr[v] : self._out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbours of ``v`` (out-neighbours in the reversed graph)."""
        self._check_vertex(v)
        return self._in_indices[self._in_indptr[v] : self._in_indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        """Out-degree ``d(v)``."""
        self._check_vertex(v)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        self._check_vertex(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def degree(self, v: int) -> int:
        """Total degree (in + out) of ``v``."""
        return self.out_degree(v) + self.in_degree(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the directed edge ``(u, v)`` exists."""
        if not self.has_vertex(u) or not self.has_vertex(v):
            return False
        return self._edge_index(u, v) is not None

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed edges as ``(u, v)`` pairs."""
        indptr = self._out_indptr
        indices = self._out_indices
        for u in range(self._num_vertices):
            for pos in range(indptr[u], indptr[u + 1]):
                yield u, int(indices[pos])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for every vertex."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for every vertex."""
        return np.diff(self._in_indptr)

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The raw ``(indptr, indices)`` pair of the out-adjacency.

        The arrays are the graph's own storage — callers must treat them as
        read-only.  This is the entry point the traversal and index layers
        use for vectorised bulk operations.
        """
        return self._out_indptr, self._out_indices

    def in_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The raw ``(indptr, indices)`` pair of the in-adjacency."""
        return self._in_indptr, self._in_indices

    # ------------------------------------------------------------------ #
    # edge attributes
    # ------------------------------------------------------------------ #
    def _edge_index(self, u: int, v: int) -> Optional[int]:
        """CSR position of edge ``(u, v)`` via binary search of ``u``'s row.

        Rows are sorted ascending (a :class:`GraphBuilder` invariant checked
        by the constructor), so no O(E) position dictionary is ever built.
        """
        start = int(self._out_indptr[u])
        stop = int(self._out_indptr[u + 1])
        pos = start + int(np.searchsorted(self._out_indices[start:stop], v))
        if pos < stop and self._out_indices[pos] == v:
            return pos
        return None

    @property
    def has_edge_weights(self) -> bool:
        """``True`` when the graph was built with per-edge weights."""
        return self._edge_weights is not None

    @property
    def has_edge_labels(self) -> bool:
        """``True`` when the graph was built with per-edge labels."""
        return self._edge_labels is not None

    def edge_weight(self, u: int, v: int, default: Optional[float] = None) -> float:
        """Weight of edge ``(u, v)``.

        Raises :class:`EdgeNotFoundError` when the edge does not exist and no
        ``default`` is given.  Unweighted graphs report a weight of ``1.0``
        for every existing edge so accumulative-value constraints degrade
        gracefully to hop counting.
        """
        pos = self._edge_index(u, v) if (self.has_vertex(u) and self.has_vertex(v)) else None
        if pos is None:
            if default is not None:
                return default
            raise EdgeNotFoundError(u, v)
        if self._edge_weights is None:
            return 1.0
        return float(self._edge_weights[pos])

    def edge_label(self, u: int, v: int, default: Optional[str] = None) -> Optional[str]:
        """Label of edge ``(u, v)`` or ``default`` / ``None`` when unlabelled."""
        pos = self._edge_index(u, v) if (self.has_vertex(u) and self.has_vertex(v)) else None
        if pos is None:
            if default is not None:
                return default
            raise EdgeNotFoundError(u, v)
        if self._edge_labels is None:
            return default
        return self._edge_labels[pos]

    def edge_weight_by_position(self, position: int) -> float:
        """Weight of the edge stored at CSR ``position`` (fast path for hot loops)."""
        if self._edge_weights is None:
            return 1.0
        return float(self._edge_weights[position])

    # ------------------------------------------------------------------ #
    # external ids
    # ------------------------------------------------------------------ #
    @property
    def has_external_ids(self) -> bool:
        """``True`` when the builder recorded external vertex identifiers."""
        return self._vertex_ids is not None

    def to_internal(self, external_id: Hashable) -> int:
        """Translate an external vertex id into the internal dense id."""
        if self._id_index is None:
            if isinstance(external_id, (int, np.integer)) and self.has_vertex(int(external_id)):
                return int(external_id)
            raise VertexNotFoundError(external_id)
        try:
            return self._id_index[external_id]
        except KeyError:
            raise VertexNotFoundError(external_id) from None

    def to_external(self, internal_id: int) -> Hashable:
        """Translate an internal dense id back to the external id."""
        self._check_vertex(internal_id)
        if self._vertex_ids is None:
            return internal_id
        return self._vertex_ids[internal_id]

    def translate_path(self, path: Sequence[int]) -> Tuple[Hashable, ...]:
        """Translate a path of internal ids into external ids."""
        return tuple(self.to_external(v) for v in path)

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def reverse_view(self) -> "DiGraph":
        """``G^r`` as a zero-copy view sharing this graph's arrays.

        The transpose is stored permanently alongside the forward graph (the
        ``BidirectionalImmutableGraph`` pattern), so reversing is a swap of
        the in/out CSR pairs — no copy, no re-sort, valid for every storage
        backend including memory-mapped and compressed snapshots.  The view
        is cached; its own :meth:`reverse_view` is the original graph.  Edge
        weights and labels are not carried over (they are aligned with the
        *forward* out-adjacency), matching :meth:`reverse` semantics.
        """
        if self._reverse_view is None:
            rev = object.__new__(DiGraph)
            rev._num_vertices = self._num_vertices
            rev._out_indptr = self._in_indptr
            rev._out_indices = self._in_indices
            rev._in_indptr = self._out_indptr
            rev._in_indices = self._out_indices
            rev._edge_weights = None
            rev._edge_labels = None
            rev._vertex_ids = self._vertex_ids
            rev._id_index = self._id_index
            rev._store = None
            rev._reverse_view = self
            self._reverse_view = rev
        return self._reverse_view

    def reverse(self) -> "DiGraph":
        """Return ``G^r``, the graph with every edge direction flipped.

        Edge weights and labels are dropped: the reverse graph is only used
        for distance computations, which do not consult them.  This copies;
        prefer :meth:`reverse_view` when a shared-storage view suffices.
        """
        return DiGraph(
            self._num_vertices,
            self._in_indptr.copy(),
            self._in_indices.copy(),
            self._out_indptr.copy(),
            self._out_indices.copy(),
            vertex_ids=None if self._vertex_ids is None else list(self._vertex_ids),
        )

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every CSR edge slot (row-expanded ``indptr``)."""
        return np.repeat(
            np.arange(self._num_vertices, dtype=np.int64), np.diff(self._out_indptr)
        )

    def _from_edge_mask(self, keep: np.ndarray) -> "DiGraph":
        """Rebuild the graph keeping only the CSR slots selected by ``keep``.

        The mask preserves CSR order, so the surviving rows stay sorted and
        the aligned weight/label arrays can be masked directly — no builder
        round trip, no per-edge Python loop.
        """
        sources = self.edge_sources()[keep]
        targets = self._out_indices[keep]
        out_indptr = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=self._num_vertices), out=out_indptr[1:])
        in_order = np.lexsort((sources, targets))
        in_indptr = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(targets, minlength=self._num_vertices), out=in_indptr[1:])

        edge_weights = None if self._edge_weights is None else self._edge_weights[keep]
        edge_labels = None
        if self._edge_labels is not None:
            edge_labels = [self._edge_labels[int(pos)] for pos in np.flatnonzero(keep)]
            if not any(label is not None for label in edge_labels):
                edge_labels = None
        if edge_weights is not None and len(edge_weights) == 0:
            edge_weights = None
        return DiGraph(
            self._num_vertices,
            out_indptr,
            targets,
            in_indptr,
            sources[in_order],
            edge_weights=edge_weights,
            edge_labels=edge_labels,
            vertex_ids=None if self._vertex_ids is None else list(self._vertex_ids),
        )

    def filter_edges(self, predicate) -> "DiGraph":
        """Return a copy that keeps only edges for which ``predicate`` is true.

        ``predicate(u, v, weight, label)`` is evaluated for every edge with
        internal ids.  Vertex ids and external-id mapping are preserved so
        queries keep working on the filtered graph — this is the materialised
        form of the predicate-constrained evaluation of Appendix E.  The
        rebuild itself is a numpy boolean mask over the CSR arrays.
        """
        num_edges = self.num_edges
        sources = self.edge_sources()
        weights = self._edge_weights
        labels = self._edge_labels
        keep = np.fromiter(
            (
                bool(
                    predicate(
                        int(sources[pos]),
                        int(self._out_indices[pos]),
                        1.0 if weights is None else float(weights[pos]),
                        None if labels is None else labels[pos],
                    )
                )
                for pos in range(num_edges)
            ),
            dtype=bool,
            count=num_edges,
        )
        return self._from_edge_mask(keep)

    def edge_list(self) -> Iterable[Tuple[int, int]]:
        """Materialise the edge list as a list of ``(u, v)`` tuples."""
        return list(self.edges())

    def copy_with_edges(self, extra_edges: Iterable[Tuple[int, int]]) -> "DiGraph":
        """Return a new graph with ``extra_edges`` added (ids are internal).

        Existing edges keep their weights and labels and the external-id
        mapping is preserved; added edges carry no attributes (they default
        to weight 1.0 on weighted graphs).  Duplicates of existing edges and
        self-loops among ``extra_edges`` are dropped, mirroring
        :class:`GraphBuilder` semantics.
        """
        extra = [(int(u), int(v)) for u, v in extra_edges]
        for u, v in extra:
            self._check_vertex(u)
            self._check_vertex(v)
        seen: set = set()
        fresh = []
        for u, v in extra:
            if u == v or (u, v) in seen or self.has_edge(u, v):
                continue
            seen.add((u, v))
            fresh.append((u, v))
        old_sources = self.edge_sources()
        old_targets = self._out_indices
        if fresh:
            add = np.asarray(fresh, dtype=np.int64)
            sources = np.concatenate([old_sources, add[:, 0]])
            targets = np.concatenate([old_targets, add[:, 1]])
        else:
            sources = old_sources
            targets = old_targets
        n = self._num_vertices
        out_order = np.lexsort((targets, sources))
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=n), out=out_indptr[1:])
        in_order = np.lexsort((sources, targets))
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(targets, minlength=n), out=in_indptr[1:])

        edge_weights = None
        edge_labels = None
        if self._edge_weights is not None:
            raw = np.concatenate(
                [self._edge_weights, np.ones(len(fresh), dtype=np.float64)]
            )
            edge_weights = raw[out_order]
        if self._edge_labels is not None:
            raw_labels = list(self._edge_labels) + [None] * len(fresh)
            edge_labels = [raw_labels[int(pos)] for pos in out_order]
        return DiGraph(
            n,
            out_indptr,
            targets[out_order],
            in_indptr,
            sources[in_order],
            edge_weights=edge_weights,
            edge_labels=edge_labels,
            vertex_ids=None if self._vertex_ids is None else list(self._vertex_ids),
        )
