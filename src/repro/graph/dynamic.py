"""Mutable directed graph used for the dynamic-graph experiments.

The paper's Figure 8 workload holds out 10 % of a dataset's edges, treats the
remaining 90 % as the initial graph and replays the held-out edges as
insertions, issuing a HcPE query per insertion to detect the cycles the new
edge closes.  Because PathEnum builds its index per query it needs no
persistent structure to maintain — the dynamic graph only has to support
cheap edge insertion/removal and snapshotting into the immutable CSR form
that the enumeration algorithms consume.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.builder import GraphBuilder, _csr_from_pairs
from repro.graph.digraph import DiGraph

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """Adjacency-set directed graph supporting insertions and deletions."""

    def __init__(self) -> None:
        self._out: Dict[Hashable, Set[Hashable]] = {}
        self._in: Dict[Hashable, Set[Hashable]] = {}
        self._num_edges = 0
        self._weights: Dict[Tuple[Hashable, Hashable], float] = {}
        self._labels: Dict[Tuple[Hashable, Hashable], str] = {}
        # Copy-on-write seed: ``from_graph`` parks the source graph here and
        # defers building the adjacency dicts until something actually needs
        # them (first mutation or per-vertex read).  ``snapshot`` of an
        # untouched graph then reuses the seed's CSR arrays outright.
        self._pending_base: Optional[DiGraph] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: DiGraph) -> "DynamicGraph":
        """Copy an immutable graph into a mutable one (external ids preserved).

        Copy-on-write: the source graph is kept as a frozen seed and the
        per-vertex adjacency sets are only materialised (in one bulk pass
        over the CSR arrays, see :meth:`_thaw`) when the graph is first
        mutated or inspected per-vertex.  Snapshotting an untouched copy
        reuses the seed's CSR arrays directly, so a ``from_graph`` →
        ``snapshot`` round trip costs far less than a per-edge rebuild.
        Edge weights/labels are not copied (matching the per-edge path,
        which never passed them through).
        """
        dynamic = cls()
        # CSR graphs built by GraphBuilder carry no self-loops, but a
        # hand-constructed DiGraph may; a DynamicGraph never holds them.
        loops = graph.edge_sources() == graph.out_csr()[1]
        if bool(loops.any()):
            graph = graph._from_edge_mask(~loops)
        dynamic._pending_base = graph
        dynamic._num_edges = graph.num_edges
        return dynamic

    def _thaw(self) -> None:
        """Materialise the adjacency dicts from a pending ``from_graph`` seed."""
        if self._pending_base is None:
            return
        graph, self._pending_base = self._pending_base, None
        n = graph.num_vertices
        dense = graph._vertex_ids is None
        external = range(n) if dense else list(graph._vertex_ids)
        out_map, in_map = self._out, self._in
        for indptr_arr, indices_arr, adjacency in (
            (*graph.out_csr(), out_map),
            (*graph.in_csr(), in_map),
        ):
            # One .tolist() per array, then C-speed list slicing per row —
            # far cheaper than a numpy sub-array + per-element conversion
            # for each of the n rows.
            indptr = indptr_arr.tolist()
            indices = indices_arr.tolist()
            if dense:
                for v in range(n):
                    adjacency[v] = set(indices[indptr[v]:indptr[v + 1]])
            else:
                for v in range(n):
                    adjacency[external[v]] = {
                        external[w] for w in indices[indptr[v]:indptr[v + 1]]
                    }
        self._num_edges = sum(len(targets) for targets in out_map.values())

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Hashable, Hashable]]) -> "DynamicGraph":
        """Build a dynamic graph directly from an edge iterable.

        Inlines the vertex/edge bookkeeping of :meth:`add_edge` (no weight
        or label plumbing, no per-call method dispatch) — the bulk path for
        replaying recorded update streams.
        """
        dynamic = cls()
        out_map, in_map = dynamic._out, dynamic._in
        count = 0
        for u, v in edges:
            if u not in out_map:
                out_map[u] = set()
                in_map[u] = set()
            if v not in out_map:
                out_map[v] = set()
                in_map[v] = set()
            targets = out_map[u]
            if u == v or v in targets:
                continue
            targets.add(v)
            in_map[v].add(u)
            count += 1
        dynamic._num_edges = count
        return dynamic

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Hashable) -> bool:
        """Register ``vertex``; return ``False`` when it already existed."""
        self._thaw()
        if vertex in self._out:
            return False
        self._out[vertex] = set()
        self._in[vertex] = set()
        return True

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        *,
        weight: Optional[float] = None,
        label: Optional[str] = None,
    ) -> bool:
        """Insert a directed edge; return ``False`` for duplicates/self-loops.

        The endpoints are registered as vertices even when the edge itself is
        rejected, mirroring :class:`~repro.graph.builder.GraphBuilder`.
        """
        self._thaw()
        self.add_vertex(source)
        self.add_vertex(target)
        if source == target:
            return False
        if target in self._out[source]:
            return False
        self._out[source].add(target)
        self._in[target].add(source)
        self._num_edges += 1
        if weight is not None:
            self._weights[(source, target)] = float(weight)
        if label is not None:
            self._labels[(source, target)] = label
        return True

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        """Delete a directed edge; raise :class:`EdgeNotFoundError` if absent."""
        self._thaw()
        if source not in self._out or target not in self._out[source]:
            raise EdgeNotFoundError(source, target)
        self._out[source].discard(target)
        self._in[target].discard(source)
        self._num_edges -= 1
        self._weights.pop((source, target), None)
        self._labels.pop((source, target), None)

    def remove_vertex(self, vertex: Hashable) -> None:
        """Delete a vertex together with all incident edges."""
        self._thaw()
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        for target in list(self._out[vertex]):
            self.remove_edge(vertex, target)
        for source in list(self._in[vertex]):
            self.remove_edge(source, vertex)
        del self._out[vertex]
        del self._in[vertex]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Current number of vertices."""
        if self._pending_base is not None:
            return self._pending_base.num_vertices
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return self._num_edges

    def has_vertex(self, vertex: Hashable) -> bool:
        """Return ``True`` when the vertex is present."""
        self._thaw()
        return vertex in self._out

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        """Return ``True`` when the directed edge is present."""
        self._thaw()
        return source in self._out and target in self._out[source]

    def neighbors(self, vertex: Hashable) -> Set[Hashable]:
        """Out-neighbour set of ``vertex``."""
        self._thaw()
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        return set(self._out[vertex])

    def in_neighbors(self, vertex: Hashable) -> Set[Hashable]:
        """In-neighbour set of ``vertex``."""
        self._thaw()
        if vertex not in self._in:
            raise VertexNotFoundError(vertex)
        return set(self._in[vertex])

    def vertices(self) -> Iterator[Hashable]:
        """Iterate over vertex ids (insertion order)."""
        self._thaw()
        return iter(self._out)

    def edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        self._thaw()
        for source, targets in self._out.items():
            for target in targets:
                yield source, target

    # ------------------------------------------------------------------ #
    # snapshot
    # ------------------------------------------------------------------ #
    def snapshot(self) -> DiGraph:
        """Freeze the current state into an immutable :class:`DiGraph`.

        Vertex insertion order determines internal ids, so repeated snapshots
        of a growing graph keep stable ids for existing vertices — queries
        formulated against an earlier snapshot remain valid.
        """
        if self.num_vertices == 0:
            raise GraphError("cannot snapshot an empty dynamic graph")
        if self._pending_base is not None:
            # Untouched copy-on-write seed: internal ids would come out in
            # base order anyway, so reuse its (immutable) CSR arrays rather
            # than rebuilding them.  Weights/labels are deliberately not
            # carried over, matching the per-edge rebuild.
            base = self._pending_base
            out_indptr, out_indices = base.out_csr()
            in_indptr, in_indices = base.in_csr()
            return DiGraph(
                base.num_vertices,
                out_indptr,
                out_indices,
                in_indptr,
                in_indices,
                vertex_ids=base._vertex_ids,
            )
        if self._weights or self._labels:
            # Attribute-carrying graphs keep the classic builder path so
            # weights/labels stay aligned with the CSR edge order.
            builder = GraphBuilder()
            for vertex in self._out:
                builder.add_vertex(vertex)
            for source, target in self.edges():
                builder.add_edge(
                    source,
                    target,
                    weight=self._weights.get((source, target)),
                    label=self._labels.get((source, target)),
                )
            return builder.build()
        # Bulk path: flatten the adjacency sets into parallel source/target
        # arrays and reuse the builder's vectorised CSR kernel directly —
        # the adjacency sets already guarantee uniqueness and no self-loops,
        # so the per-edge dedup bookkeeping of GraphBuilder is pure
        # overhead here.
        external = list(self._out)
        n = len(external)
        m = self._num_edges
        trivially_dense = all(
            isinstance(vid, (int, np.integer)) and int(vid) == i
            for i, vid in enumerate(external)
        )
        degrees = [len(targets) for targets in self._out.values()]
        sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
        flat = chain.from_iterable(self._out.values())
        if trivially_dense:
            # Adjacency members are already the internal ids.
            targets = np.fromiter(flat, dtype=np.int64, count=m)
        else:
            index = {vertex: i for i, vertex in enumerate(external)}
            targets = np.fromiter(
                map(index.__getitem__, flat), dtype=np.int64, count=m
            )
        out_indptr, out_indices, _ = _csr_from_pairs(n, sources, targets)
        in_indptr, in_indices, _ = _csr_from_pairs(n, targets, sources)
        return DiGraph(
            n,
            out_indptr,
            out_indices,
            in_indptr,
            in_indices,
            vertex_ids=None if trivially_dense else external,
        )

    def apply_updates(
        self, updates: Iterable[Tuple[str, Hashable, Hashable]]
    ) -> List[Tuple[str, Hashable, Hashable]]:
        """Apply a batch of ``("add" | "remove", u, v)`` updates.

        Returns the updates that actually changed the graph (duplicates and
        missing edges are skipped rather than raising, because replayed
        streams routinely contain both).
        """
        applied: List[Tuple[str, Hashable, Hashable]] = []
        for action, u, v in updates:
            if action == "add":
                if self.add_edge(u, v):
                    applied.append((action, u, v))
            elif action == "remove":
                if self.has_edge(u, v):
                    self.remove_edge(u, v)
                    applied.append((action, u, v))
            else:
                raise GraphError(f"unknown update action {action!r}")
        return applied
