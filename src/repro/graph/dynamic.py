"""Mutable directed graph used for the dynamic-graph experiments.

The paper's Figure 8 workload holds out 10 % of a dataset's edges, treats the
remaining 90 % as the initial graph and replays the held-out edges as
insertions, issuing a HcPE query per insertion to detect the cycles the new
edge closes.  Because PathEnum builds its index per query it needs no
persistent structure to maintain — the dynamic graph only has to support
cheap edge insertion/removal and snapshotting into the immutable CSR form
that the enumeration algorithms consume.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """Adjacency-set directed graph supporting insertions and deletions."""

    def __init__(self) -> None:
        self._out: Dict[Hashable, Set[Hashable]] = {}
        self._in: Dict[Hashable, Set[Hashable]] = {}
        self._num_edges = 0
        self._weights: Dict[Tuple[Hashable, Hashable], float] = {}
        self._labels: Dict[Tuple[Hashable, Hashable], str] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: DiGraph) -> "DynamicGraph":
        """Copy an immutable graph into a mutable one (external ids preserved)."""
        dynamic = cls()
        for v in graph.vertices():
            dynamic.add_vertex(graph.to_external(v))
        for u, v in graph.edges():
            dynamic.add_edge(graph.to_external(u), graph.to_external(v))
        return dynamic

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Hashable, Hashable]]) -> "DynamicGraph":
        """Build a dynamic graph directly from an edge iterable."""
        dynamic = cls()
        for u, v in edges:
            dynamic.add_edge(u, v)
        return dynamic

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Hashable) -> bool:
        """Register ``vertex``; return ``False`` when it already existed."""
        if vertex in self._out:
            return False
        self._out[vertex] = set()
        self._in[vertex] = set()
        return True

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        *,
        weight: Optional[float] = None,
        label: Optional[str] = None,
    ) -> bool:
        """Insert a directed edge; return ``False`` for duplicates/self-loops.

        The endpoints are registered as vertices even when the edge itself is
        rejected, mirroring :class:`~repro.graph.builder.GraphBuilder`.
        """
        self.add_vertex(source)
        self.add_vertex(target)
        if source == target:
            return False
        if target in self._out[source]:
            return False
        self._out[source].add(target)
        self._in[target].add(source)
        self._num_edges += 1
        if weight is not None:
            self._weights[(source, target)] = float(weight)
        if label is not None:
            self._labels[(source, target)] = label
        return True

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        """Delete a directed edge; raise :class:`EdgeNotFoundError` if absent."""
        if source not in self._out or target not in self._out[source]:
            raise EdgeNotFoundError(source, target)
        self._out[source].discard(target)
        self._in[target].discard(source)
        self._num_edges -= 1
        self._weights.pop((source, target), None)
        self._labels.pop((source, target), None)

    def remove_vertex(self, vertex: Hashable) -> None:
        """Delete a vertex together with all incident edges."""
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        for target in list(self._out[vertex]):
            self.remove_edge(vertex, target)
        for source in list(self._in[vertex]):
            self.remove_edge(source, vertex)
        del self._out[vertex]
        del self._in[vertex]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Current number of vertices."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return self._num_edges

    def has_vertex(self, vertex: Hashable) -> bool:
        """Return ``True`` when the vertex is present."""
        return vertex in self._out

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        """Return ``True`` when the directed edge is present."""
        return source in self._out and target in self._out[source]

    def neighbors(self, vertex: Hashable) -> Set[Hashable]:
        """Out-neighbour set of ``vertex``."""
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        return set(self._out[vertex])

    def in_neighbors(self, vertex: Hashable) -> Set[Hashable]:
        """In-neighbour set of ``vertex``."""
        if vertex not in self._in:
            raise VertexNotFoundError(vertex)
        return set(self._in[vertex])

    def vertices(self) -> Iterator[Hashable]:
        """Iterate over vertex ids (insertion order)."""
        return iter(self._out)

    def edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source, targets in self._out.items():
            for target in targets:
                yield source, target

    # ------------------------------------------------------------------ #
    # snapshot
    # ------------------------------------------------------------------ #
    def snapshot(self) -> DiGraph:
        """Freeze the current state into an immutable :class:`DiGraph`.

        Vertex insertion order determines internal ids, so repeated snapshots
        of a growing graph keep stable ids for existing vertices — queries
        formulated against an earlier snapshot remain valid.
        """
        if self.num_vertices == 0:
            raise GraphError("cannot snapshot an empty dynamic graph")
        builder = GraphBuilder()
        for vertex in self._out:
            builder.add_vertex(vertex)
        for source, target in self.edges():
            builder.add_edge(
                source,
                target,
                weight=self._weights.get((source, target)),
                label=self._labels.get((source, target)),
            )
        return builder.build()

    def apply_updates(
        self, updates: Iterable[Tuple[str, Hashable, Hashable]]
    ) -> List[Tuple[str, Hashable, Hashable]]:
        """Apply a batch of ``("add" | "remove", u, v)`` updates.

        Returns the updates that actually changed the graph (duplicates and
        missing edges are skipped rather than raising, because replayed
        streams routinely contain both).
        """
        applied: List[Tuple[str, Hashable, Hashable]] = []
        for action, u, v in updates:
            if action == "add":
                if self.add_edge(u, v):
                    applied.append((action, u, v))
            elif action == "remove":
                if self.has_edge(u, v):
                    self.remove_edge(u, v)
                    applied.append((action, u, v))
            else:
                raise GraphError(f"unknown update action {action!r}")
        return applied
