"""Page-aligned binary graph snapshots: write once, attach in milliseconds.

The ``.npz`` image (:mod:`repro.graph.io`) must be *decompressed and copied*
on every process start — cold-start cost grows with graph size, and N
processes on one box hold N private copies.  The snapshot format here is the
storage counterpart of large compressed-graph serving systems (WebGraph,
swh-graph): an immutable file whose arrays are stored raw, little-endian and
page-aligned, so a reader memory-maps them in place.  Opening costs a header
parse plus page tables regardless of size, the kernel's page cache holds one
image shared by every process on the host, and graphs larger than RAM page
in on demand.

Layout::

    bytes 0..7    magic  b"RSNAP001"
    bytes 8..15   uint64 little-endian header length H
    bytes 16..    UTF-8 JSON header
    data          starts at the first 4096-byte boundary >= 16 + H

The JSON header records the codec (``"raw"`` flat arrays or ``"compressed"``
gap/varint blocks, :mod:`repro.graph.blocks`), the graph meta (vertex count,
edge labels, how external ids are encoded) and, per array, its *relative*
byte offset into the data region, shape and dtype.  External vertex ids are
stored as data arrays — int64, or offsets + UTF-8 bytes for strings — so the
header stays O(1) and attach cost is independent of graph size.  Offsets are relative so the header can be
serialised before its own length is known; every array is itself 4096-byte
aligned within the data region.

Both codecs store the transpose (``in_indptr`` / ``in_indices``) permanently
alongside the forward graph — the ``BidirectionalImmutableGraph`` pattern —
so reverse-BFS distance warming never pays an on-demand transposition.

:func:`save_snapshot` / :func:`load_snapshot` are the high-level graph API;
:func:`write_snapshot` / :func:`map_snapshot` are the array-level primitives
shared with :class:`~repro.graph.store.MmapStore` and
:class:`~repro.graph.store.CompressedStore`.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.blocks import CompressedIndices
from repro.graph.store import CompressedStore, MmapStore

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_PAGE",
    "decode_vertex_ids",
    "load_snapshot",
    "map_snapshot",
    "read_snapshot_header",
    "save_snapshot",
    "snapshot_codec",
    "write_snapshot",
]

PathLike = Union[str, Path]

#: First eight bytes of every snapshot file.
SNAPSHOT_MAGIC = b"RSNAP001"

#: Alignment unit for the data region and for every array inside it.  One
#: page on effectively every platform numpy runs on; mapped views are then
#: page-aligned, which is what lets the OS share them across processes.
SNAPSHOT_PAGE = 4096

#: Store choices accepted by :func:`load_snapshot`.
_LOAD_STORES = ("auto", "mmap", "compressed", "heap", "shared_memory", "shm")

#: The arrays a compressed snapshot block-codes (everything else stays flat).
_BLOCKED = ("out_indices", "in_indices")


def _page_aligned(size: int) -> int:
    return (size + SNAPSHOT_PAGE - 1) // SNAPSHOT_PAGE * SNAPSHOT_PAGE


# --------------------------------------------------------------------- #
# array-level primitives
# --------------------------------------------------------------------- #
def write_snapshot(
    path: PathLike,
    arrays: Mapping[str, np.ndarray],
    meta: Optional[Mapping[str, object]] = None,
    *,
    codec: str = "raw",
) -> Path:
    """Write ``arrays`` + ``meta`` as a snapshot file; return the path.

    ``meta`` must be JSON-serialisable (it lives in the header).  Arrays are
    written contiguous and little-endian regardless of their in-memory
    byte order, so a snapshot is portable across hosts.
    """
    path = Path(path)
    specs: Dict[str, Dict[str, object]] = {}
    payload = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        if array.dtype.byteorder == ">":
            array = array.astype(array.dtype.newbyteorder("<"))
        specs[name] = {
            "offset": offset,
            "shape": list(array.shape),
            "dtype": array.dtype.str,
        }
        payload.append((offset, array))
        offset = _page_aligned(offset + array.nbytes)
    header = json.dumps(
        {"codec": codec, "meta": dict(meta or {}), "arrays": specs},
        separators=(",", ":"),
    ).encode("utf-8")
    data_start = _page_aligned(16 + len(header))
    with open(path, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        for rel, array in payload:
            if array.nbytes:
                handle.seek(data_start + rel)
                handle.write(memoryview(array).cast("B"))
        # Pad to the full aligned extent so every declared offset is
        # mappable even when the last array leaves a partial page.
        handle.truncate(data_start + max(offset, SNAPSHOT_PAGE))
    return path


def _read_header(handle) -> Tuple[Dict[str, object], int]:
    prefix = handle.read(16)
    if len(prefix) < 16 or prefix[:8] != SNAPSHOT_MAGIC:
        raise GraphError(
            f"{handle.name!r} is not a graph snapshot (bad magic); "
            "write one with save_snapshot or `repro convert`"
        )
    (header_len,) = struct.unpack("<Q", prefix[8:16])
    try:
        header = json.loads(handle.read(header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphError(f"corrupt snapshot header in {handle.name!r}") from exc
    return header, _page_aligned(16 + header_len)


def read_snapshot_header(path: PathLike) -> Dict[str, object]:
    """Parse just the JSON header of a snapshot (codec, meta, array specs)."""
    with open(path, "rb") as handle:
        header, _ = _read_header(handle)
    return header


def snapshot_codec(path: PathLike) -> str:
    """The codec (``"raw"`` / ``"compressed"``) of the snapshot at ``path``."""
    return str(read_snapshot_header(path)["codec"])


def map_snapshot(
    path: PathLike, *, expected_codec: Optional[str] = None
) -> Tuple[Dict[str, object], mmap.mmap]:
    """Map a snapshot read-only; return ``(header, mapping)``.

    Array offsets in the returned header are rewritten to be *absolute*
    within the mapping.  The file descriptor is closed before returning —
    the mapping keeps the file open, so no fd is held per attached store.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        header, data_start = _read_header(handle)
        if expected_codec is not None and header.get("codec") != expected_codec:
            raise GraphError(
                f"snapshot {str(path)!r} has codec {header.get('codec')!r}, "
                f"expected {expected_codec!r}; convert it with `repro convert`"
            )
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    for spec in header["arrays"].values():
        spec["offset"] = int(spec["offset"]) + data_start
    return header, mapping


# --------------------------------------------------------------------- #
# graph-level API
# --------------------------------------------------------------------- #
def _snapshot_meta(graph) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Graph extras for the header plus the vertex-id data arrays.

    External vertex ids are stored as regular snapshot arrays — int64, or
    offsets + UTF-8 bytes for strings — never inline in the JSON header:
    the header must stay O(1) so attach cost is independent of graph size.
    The header only records ``vertex_ids_kind`` (``"int"`` / ``"str"``);
    :func:`decode_vertex_ids` rebuilds the id list on attach.
    """
    meta: Dict[str, object] = {"num_vertices": graph.num_vertices}
    id_arrays: Dict[str, np.ndarray] = {}
    if graph.has_external_ids:
        ids = [graph.to_external(v) for v in graph.vertices()]
        if all(isinstance(vid, (int, np.integer)) for vid in ids):
            meta["vertex_ids_kind"] = "int"
            id_arrays["vertex_ids"] = np.asarray([int(vid) for vid in ids], dtype=np.int64)
        elif all(isinstance(vid, str) for vid in ids):
            meta["vertex_ids_kind"] = "str"
            encoded = [vid.encode("utf-8") for vid in ids]
            offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
            np.cumsum([len(raw) for raw in encoded], out=offsets[1:])
            blob = b"".join(encoded)
            id_arrays["vertex_id_offsets"] = offsets
            id_arrays["vertex_id_bytes"] = np.frombuffer(blob, dtype=np.uint8)
        else:
            raise GraphError(
                "snapshots support integer or string vertex ids only; "
                "write an edge list for graphs with other id types"
            )
    if graph.has_edge_labels:
        meta["edge_labels"] = list(graph._edge_labels)
    return meta, id_arrays


def decode_vertex_ids(meta: Dict[str, object], views: Dict[str, object]) -> None:
    """Pop the vertex-id arrays out of ``views`` into ``meta["vertex_ids"]``.

    Called by the stores right after mapping a snapshot, so the graph layer
    keeps seeing a plain ``meta["vertex_ids"]`` list whichever way the ids
    were persisted.  Snapshots from before the arrays existed carry the ids
    directly in the JSON header; those pass through untouched.
    """
    kind = meta.pop("vertex_ids_kind", None)
    if kind == "int":
        meta["vertex_ids"] = views.pop("vertex_ids").tolist()
    elif kind == "str":
        offsets = views.pop("vertex_id_offsets")
        blob = views.pop("vertex_id_bytes").tobytes()
        meta["vertex_ids"] = [
            blob[int(offsets[i]) : int(offsets[i + 1])].decode("utf-8")
            for i in range(len(offsets) - 1)
        ]
    elif kind is not None:
        raise GraphError(f"unknown snapshot vertex id kind {kind!r}")


def save_snapshot(graph, path: PathLike, *, codec: str = "raw") -> Path:
    """Persist ``graph`` as a mappable snapshot.

    ``codec="raw"`` writes the flat CSR arrays (the :class:`MmapStore`
    format); ``codec="compressed"`` gap/varint block-codes the two neighbour
    arrays (the :class:`CompressedStore` format).  Both store forward and
    reverse adjacency.
    """
    if codec not in ("raw", "compressed"):
        raise GraphError(f"unknown snapshot codec {codec!r}; use 'raw' or 'compressed'")
    meta, id_arrays = _snapshot_meta(graph)
    source = graph._csr_arrays()
    arrays: Dict[str, np.ndarray] = {}
    for name, array in source.items():
        if codec == "compressed" and name in _BLOCKED:
            indptr = source[name.replace("_indices", "_indptr")]
            if isinstance(array, CompressedIndices):
                blocked = array
            else:
                blocked = CompressedIndices.from_csr(
                    np.asarray(indptr, dtype=np.int64), array
                )
            prefix = name[: -len("_indices")]
            for part, data in blocked.arrays().items():
                arrays[f"{prefix}_{part}"] = data
        elif isinstance(array, CompressedIndices):
            arrays[name] = array.materialize()
        else:
            arrays[name] = array
    arrays.update(id_arrays)
    return write_snapshot(path, arrays, meta, codec=codec)


def load_snapshot(path: PathLike, *, store: str = "auto"):
    """Load a snapshot into a :class:`~repro.graph.digraph.DiGraph`.

    ``store`` selects the backend holding the arrays:

    * ``"auto"`` — the zero-copy mapping matching the file's codec
      (``mmap`` for raw snapshots, ``compressed`` for compressed ones);
    * ``"mmap"`` — map a raw snapshot in place (read-only views);
    * ``"compressed"`` — map a compressed snapshot in place, or block-code
      a raw one in memory;
    * ``"heap"`` / ``"shared_memory"`` — materialise flat arrays on the
      heap or into a fresh shared-memory segment.
    """
    from repro.graph.digraph import DiGraph

    if store not in _LOAD_STORES:
        raise GraphError(
            f"unknown snapshot store {store!r}; available: {', '.join(_LOAD_STORES)}"
        )
    path = Path(path)
    codec = snapshot_codec(path)
    if store == "auto":
        store = "compressed" if codec == "compressed" else "mmap"

    if store == "mmap":
        return DiGraph._from_store(MmapStore.open(path))
    if store == "compressed":
        if codec == "compressed":
            return DiGraph._from_store(CompressedStore.open(path))
        # Raw file: encode in memory off the mapped views (one read pass).
        raw = MmapStore.open(path)
        packed = CompressedStore.pack(raw.arrays(), raw.meta)
        return DiGraph._from_store(packed)

    # Flat materialisation paths (heap / shared memory).
    if codec == "compressed":
        mapped = CompressedStore.open(path)
        views = {
            name: view.materialize() if isinstance(view, CompressedIndices) else view
            for name, view in mapped.arrays().items()
        }
        meta = mapped.meta
    else:
        mapped = MmapStore.open(path)
        views = mapped.arrays()
        meta = mapped.meta
    graph = DiGraph(
        int(meta["num_vertices"]),
        views["out_indptr"],
        views["out_indices"],
        views["in_indptr"],
        views["in_indices"],
        edge_weights=views.get("edge_weights"),
        edge_labels=meta.get("edge_labels"),
        vertex_ids=meta.get("vertex_ids"),
        store=None if store == "heap" else store,
    )
    if store == "heap":
        # Detach from the mapping: heap means process-private flat arrays.
        graph._out_indptr = np.array(graph._out_indptr)
        graph._out_indices = np.array(graph._out_indices)
        graph._in_indptr = np.array(graph._in_indptr)
        graph._in_indices = np.array(graph._in_indices)
        if graph._edge_weights is not None:
            graph._edge_weights = np.array(graph._edge_weights)
        mapped.close()
    return graph
