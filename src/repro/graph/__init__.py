"""Directed-graph substrate used by every algorithm in the package.

The central type is :class:`~repro.graph.digraph.DiGraph`, an immutable
CSR-encoded directed graph over dense integer vertex ids.  Graphs are built
either with :class:`~repro.graph.builder.GraphBuilder`, loaded from an edge
list with :func:`~repro.graph.io.read_edge_list`, or produced by one of the
synthetic generators in :mod:`repro.graph.generators`.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import (
    chain_graph,
    complete_graph,
    erdos_renyi,
    grid_graph,
    layered_graph,
    power_law_graph,
    small_world_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.properties import GraphSummary, summarize
from repro.graph.traversal import (
    UNREACHABLE,
    bfs_distances,
    bfs_distances_bounded,
    distance,
    has_path_within,
    shortest_path,
)

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "DynamicGraph",
    "GraphSummary",
    "summarize",
    "read_edge_list",
    "write_edge_list",
    "UNREACHABLE",
    "bfs_distances",
    "bfs_distances_bounded",
    "distance",
    "has_path_within",
    "shortest_path",
    "erdos_renyi",
    "power_law_graph",
    "small_world_graph",
    "complete_graph",
    "chain_graph",
    "grid_graph",
    "layered_graph",
]
