"""Pluggable array storage backends for graph and distance-cache data.

:class:`~repro.graph.digraph.DiGraph` keeps its CSR arrays inside a
:class:`GraphStore`.  Four backends exist:

* :class:`HeapStore` — plain process-private numpy arrays (the default; the
  behaviour the package always had);
* :class:`SharedMemoryStore` — one ``multiprocessing.shared_memory`` segment
  holding every array back to back, so a graph (or a distance cache) can be
  *published once* and attached zero-copy by any number of worker processes;
* :class:`MmapStore` — a page-aligned snapshot file
  (:mod:`repro.graph.snapshot`) mapped read-only with ``mmap``: a cold
  process attaches in milliseconds regardless of graph size, and every
  process on the box shares one page cache image with zero copies;
* :class:`CompressedStore` — the neighbour arrays gap/varint-encoded into
  fixed-size blocks (:mod:`repro.graph.blocks`), decoded block-at-a-time on
  access; file-backed instances map the compressed snapshot the same way
  :class:`MmapStore` maps a raw one, so both resident *and* mapped bytes
  shrink by the compression ratio.

A shareable store is described by a small picklable :class:`StoreHandle` (a
segment name or snapshot path plus an array layout); sending the handle to a
worker costs a few hundred bytes regardless of graph size, which is the
pattern large compressed-graph systems (e.g. swh-graph) use to fan one
immutable graph image out to many readers.  File-backed handles re-attach by
re-mapping the snapshot — no segment lifecycle, no resource tracker, no
owner.

Lifecycle rules
---------------

* The process that calls :meth:`SharedMemoryStore.pack` *owns* the segment
  and must eventually call :meth:`SharedMemoryStore.unlink` (or
  ``close(unlink=True)``), otherwise the segment outlives the process.
* Attachers call :meth:`SharedMemoryStore.attach` and ``close()`` when done;
  closing an attachment never destroys the segment.
* On Python < 3.13 the stdlib registers *attached* segments with the
  ``resource_tracker``, which would unlink them when the attaching process
  exits — destroying the owner's data.  :meth:`attach` therefore unregisters
  the segment from the tracker of the attaching process; only the owner is
  responsible for cleanup.
"""

from __future__ import annotations

import mmap as mmap_module
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.blocks import CompressedIndices

__all__ = [
    "CompressedStore",
    "GraphStore",
    "HeapStore",
    "MmapStore",
    "SharedMemoryStore",
    "StoreHandle",
    "open_store",
]

#: 8-byte alignment keeps every int64/float64 view naturally aligned.
_ALIGNMENT = 8


def _aligned(size: int) -> int:
    return (size + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


#: Serialises the pre-3.13 registration-suppressing monkeypatch below:
#: without it, two concurrent attaches could each save the other's no-op
#: as the "original" and leave tracking disabled process-wide.
_ATTACH_LOCK = threading.Lock()


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it for cleanup.

    Before Python 3.13 (which added ``track=False``) the stdlib registers
    *every* opened segment with the resource tracker.  For an attacher that
    is wrong twice over: a ``spawn`` child's own tracker would unlink the
    owner's segment when the child exits, and a ``fork`` child shares the
    owner's tracker, so unregistering after the fact would drop the owner's
    registration instead.  Suppressing registration during the open leaves
    cleanup responsibility exactly where it belongs — with the owner.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


@dataclass(frozen=True)
class StoreHandle:
    """Picklable description of a shareable array pack.

    For the shared-memory backend ``segment_name`` names the segment and
    ``layout`` maps each array name to ``(offset, shape, dtype_str)`` inside
    it; ``meta`` carries small picklable extras (external vertex ids, edge
    labels, ...) that ride the pickle instead of the segment.  For the
    file-backed backends (``"mmap"`` / ``"compressed"``) ``segment_name``
    holds the snapshot path and the attacher re-reads layout and meta from
    the snapshot header — the handle stays a few hundred bytes either way.
    """

    segment_name: str
    layout: Dict[str, Tuple[int, Tuple[int, ...], str]]
    meta: Dict[str, object] = field(default_factory=dict)
    backend: str = "shared_memory"

    def attach(self) -> "GraphStore":
        """Open the described store in this process (read-only views)."""
        if self.backend == "mmap":
            return MmapStore.open(self.segment_name)
        if self.backend == "compressed":
            return CompressedStore.open(self.segment_name)
        return SharedMemoryStore.attach(self)


class GraphStore:
    """Common interface of the array storage backends."""

    #: Short backend identifier (``"heap"`` / ``"shared_memory"``).
    backend: str = "abstract"
    #: Whether :meth:`handle` can describe this store to another process.
    shareable: bool = False

    def arrays(self) -> Dict[str, np.ndarray]:
        """The stored arrays by name."""
        raise NotImplementedError

    def get(self, name: str) -> np.ndarray:
        """One stored array by name."""
        return self.arrays()[name]

    def nbytes(self) -> Dict[str, int]:
        """Per-array storage size in bytes."""
        return {name: int(array.nbytes) for name, array in self.arrays().items()}

    def handle(self) -> StoreHandle:
        """A picklable handle another process can attach (shareable stores)."""
        raise GraphError(f"{self.backend!r} store cannot be shared across processes")

    def close(self, *, unlink: bool = False) -> None:
        """Release this process's mapping (and the segment when ``unlink``)."""

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HeapStore(GraphStore):
    """Process-private storage: arrays live on the ordinary Python heap."""

    backend = "heap"
    shareable = False

    def __init__(self, arrays: Optional[Mapping[str, np.ndarray]] = None) -> None:
        self._arrays: Dict[str, np.ndarray] = {}
        if arrays:
            for name, array in arrays.items():
                self._arrays[name] = np.ascontiguousarray(array)

    @classmethod
    def pack(
        cls, arrays: Mapping[str, np.ndarray], meta: Optional[Mapping[str, object]] = None
    ) -> "HeapStore":
        """Build a heap store from ``arrays`` (``meta`` is kept for symmetry)."""
        store = cls(arrays)
        store.meta = dict(meta or {})
        return store

    def arrays(self) -> Dict[str, np.ndarray]:
        return self._arrays


class SharedMemoryStore(GraphStore):
    """All arrays packed back to back into one shared-memory segment.

    Create with :meth:`pack` (the owner) or :meth:`attach` (a reader).  The
    arrays returned by :meth:`arrays` are views straight into the segment —
    attachment copies nothing, no matter how large the graph is.  Attached
    views are marked read-only; the pack is a *read-mostly* publication, not
    a coordination channel.
    """

    backend = "shared_memory"
    shareable = True

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]],
        meta: Dict[str, object],
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._layout = layout
        self.meta = meta
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._views: Dict[str, np.ndarray] = {}
        for name, (offset, shape, dtype) in layout.items():
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            if not owner:
                view.flags.writeable = False
            self._views[name] = view

    # -- construction -------------------------------------------------- #
    @classmethod
    def pack(
        cls,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "SharedMemoryStore":
        """Copy ``arrays`` into a fresh segment owned by this process."""
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        materialised: Dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            materialised[name] = array
            layout[name] = (offset, tuple(array.shape), array.dtype.str)
            offset = _aligned(offset + array.nbytes)
        # A zero-byte segment is invalid; keep one alignment unit for the
        # degenerate all-empty-arrays case (e.g. an edgeless graph).
        shm = shared_memory.SharedMemory(create=True, size=max(offset, _ALIGNMENT))
        store = cls(shm, layout, dict(meta or {}), owner=True)
        for name, array in materialised.items():
            if array.size:
                store._views[name][...] = array
        return store

    @classmethod
    def allocate(
        cls,
        shapes: Mapping[str, Tuple[Tuple[int, ...], str]],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "SharedMemoryStore":
        """Create an owned segment with uninitialised arrays of given shapes.

        ``shapes`` maps each array name to ``(shape, dtype_str)``.  Loaders
        use this to decompress file data *directly into* the segment views,
        skipping the intermediate heap copy that :meth:`pack` implies.
        """
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for name, (shape, dtype) in shapes.items():
            dt = np.dtype(dtype)
            count = 1
            for dim in shape:
                count *= int(dim)
            layout[name] = (offset, tuple(int(dim) for dim in shape), dt.str)
            offset = _aligned(offset + count * dt.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, _ALIGNMENT))
        return cls(shm, layout, dict(meta or {}), owner=True)

    @classmethod
    def attach(cls, handle: StoreHandle) -> "SharedMemoryStore":
        """Map an existing segment described by ``handle`` into this process."""
        try:
            shm = _open_untracked(handle.segment_name)
        except FileNotFoundError:
            raise GraphError(
                f"shared graph segment {handle.segment_name!r} does not exist "
                "(the owner may have unlinked it already)"
            ) from None
        return cls(shm, dict(handle.layout), dict(handle.meta), owner=False)

    # -- GraphStore interface ------------------------------------------ #
    def arrays(self) -> Dict[str, np.ndarray]:
        return self._views

    def handle(self) -> StoreHandle:
        return StoreHandle(self._shm.name, dict(self._layout), dict(self.meta))

    @property
    def segment_name(self) -> str:
        """Name of the backing shared-memory segment."""
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        """``True`` in the process that created (and must unlink) the segment."""
        return self._owner

    @property
    def is_unlinked(self) -> bool:
        """``True`` once the segment name was removed; new attaches will fail."""
        return self._unlinked

    def close(self, *, unlink: bool = False) -> None:
        """Drop this process's mapping; owners may also destroy the segment."""
        if self._closed:
            return
        self._closed = True
        self._views = {}
        self._shm.close()
        if unlink and self._owner:
            self.unlink()

    def unlink(self) -> None:
        """Remove the segment name (owner only).

        Existing mappings — the owner's included — stay valid until each
        process closes its attachment; only *new* attaches become
        impossible, and the memory is freed once the last mapping goes.
        """
        if not self._owner:
            raise GraphError("only the owning process may unlink a shared segment")
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            if not self._closed:
                self._shm.close()
        except Exception:
            pass


class MmapStore(GraphStore):
    """Read-only views straight into a page-aligned raw snapshot file.

    Created with :meth:`open` against a ``codec="raw"`` snapshot written by
    :func:`repro.graph.snapshot.save_snapshot`.  Attachment maps the file
    once and wraps each array as a zero-copy ``np.frombuffer`` view, so a
    cold start costs a header parse plus page-table setup — milliseconds,
    independent of graph size — and N processes mapping the same snapshot
    share one page-cache image.  There is no owner and nothing to unlink:
    :meth:`close` merely drops this process's mapping.
    """

    backend = "mmap"
    shareable = True

    def __init__(
        self,
        path: Path,
        mm: mmap_module.mmap,
        views: Dict[str, np.ndarray],
        meta: Dict[str, object],
    ) -> None:
        self._path = path
        self._mm = mm
        self._views = views
        self.meta = meta
        self._closed = False

    @classmethod
    def open(cls, path: Union[str, Path]) -> "MmapStore":
        """Map the raw snapshot at ``path`` read-only."""
        from repro.graph.snapshot import decode_vertex_ids, map_snapshot

        path = Path(path)
        header, mm = map_snapshot(path, expected_codec="raw")
        views = {
            name: _view_from_mapping(mm, spec)
            for name, spec in header["arrays"].items()
        }
        meta = dict(header.get("meta", {}))
        decode_vertex_ids(meta, views)
        return cls(path, mm, views, meta)

    @property
    def path(self) -> Path:
        """The snapshot file backing this mapping."""
        return self._path

    @property
    def is_owner(self) -> bool:
        """Snapshot files have no owning process; nothing is ever unlinked."""
        return False

    def arrays(self) -> Dict[str, np.ndarray]:
        return self._views

    def handle(self) -> StoreHandle:
        return StoreHandle(str(self._path), {}, {}, backend=self.backend)

    def close(self, *, unlink: bool = False) -> None:
        """Drop the mapping; ``unlink`` is ignored (the file is never deleted)."""
        if self._closed:
            return
        self._closed = True
        self._views = {}
        _close_mapping(self._mm)

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


class CompressedStore(GraphStore):
    """Gap/varint block-coded neighbour arrays behind the store interface.

    Arrays named ``*_indices`` whose companion ``*_indptr`` is present are
    held as :class:`~repro.graph.blocks.CompressedIndices` — decoded
    block-at-a-time into a small reusable buffer on access — while the
    O(|V|) offset arrays (and edge weights) stay flat.  Two lives:

    * :meth:`pack` encodes flat arrays in memory (heap-resident compressed);
    * :meth:`open` maps a ``codec="compressed"`` snapshot file, combining
      the compression with :class:`MmapStore`'s millisecond attach and
      shared page cache.  Only file-backed instances are shareable.
    """

    backend = "compressed"

    def __init__(
        self,
        views: Dict[str, object],
        meta: Dict[str, object],
        *,
        path: Optional[Path] = None,
        mm: Optional[mmap_module.mmap] = None,
    ) -> None:
        self._views = views
        self.meta = meta
        self._path = path
        self._mm = mm
        self._closed = False

    @classmethod
    def pack(
        cls,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "CompressedStore":
        """Encode ``arrays`` in memory (indices blocked, the rest flat)."""
        views: Dict[str, object] = {}
        for name, array in arrays.items():
            indptr_name = name.replace("_indices", "_indptr")
            if name.endswith("_indices") and indptr_name in arrays:
                views[name] = CompressedIndices.from_csr(
                    np.asarray(arrays[indptr_name], dtype=np.int64), array
                )
            else:
                views[name] = np.ascontiguousarray(array)
        return cls(views, dict(meta or {}))

    @classmethod
    def open(cls, path: Union[str, Path]) -> "CompressedStore":
        """Map the compressed snapshot at ``path`` read-only."""
        from repro.graph.snapshot import decode_vertex_ids, map_snapshot

        path = Path(path)
        header, mm = map_snapshot(path, expected_codec="compressed")
        specs = header["arrays"]
        raw = {name: _view_from_mapping(mm, spec) for name, spec in specs.items()}
        views: Dict[str, object] = {}
        consumed = set()
        for name in list(raw):
            if not name.endswith("_stream"):
                continue
            prefix = name[: -len("_stream")]
            part_names = [f"{prefix}_{part}" for part in ("stream", "offsets", "anchors", "starts")]
            views[f"{prefix}_indices"] = CompressedIndices(
                *(raw[part] for part in part_names)
            )
            consumed.update(part_names)
        for name, view in raw.items():
            if name not in consumed:
                views[name] = view
        meta = dict(header.get("meta", {}))
        decode_vertex_ids(meta, views)
        return cls(views, meta, path=path, mm=mm)

    @property
    def shareable(self) -> bool:  # type: ignore[override]
        """Only file-backed instances can be attached from another process."""
        return self._path is not None

    @property
    def path(self) -> Optional[Path]:
        """The snapshot file backing this store, or ``None`` for heap packs."""
        return self._path

    @property
    def is_owner(self) -> bool:
        """Snapshot files have no owning process; nothing is ever unlinked."""
        return False

    def arrays(self) -> Dict[str, np.ndarray]:
        return self._views  # type: ignore[return-value]

    def nbytes(self) -> Dict[str, int]:
        """Per-array *stored* bytes (compressed for the blocked arrays)."""
        return {name: int(view.nbytes) for name, view in self._views.items()}

    def handle(self) -> StoreHandle:
        if self._path is None:
            raise GraphError(
                "a heap-packed compressed store cannot be shared across "
                "processes; save a compressed snapshot and open that instead"
            )
        return StoreHandle(str(self._path), {}, {}, backend=self.backend)

    def close(self, *, unlink: bool = False) -> None:
        """Drop the views (and mapping); ``unlink`` is ignored."""
        if self._closed:
            return
        self._closed = True
        self._views = {}
        if self._mm is not None:
            _close_mapping(self._mm)

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


def _view_from_mapping(mm: mmap_module.mmap, spec) -> np.ndarray:
    """A zero-copy read-only array over one region of a snapshot mapping."""
    offset, shape, dtype = spec["offset"], spec["shape"], spec["dtype"]
    dt = np.dtype(dtype)
    count = 1
    for dim in shape:
        count *= dim
    view = np.frombuffer(mm, dtype=dt, count=count, offset=offset).reshape(shape)
    # ACCESS_READ mappings already yield read-only buffers; this keeps the
    # invariant explicit (and covers copy-on-write mappings, if ever used).
    view.flags.writeable = False
    return view


def _close_mapping(mm: mmap_module.mmap) -> None:
    """Close a snapshot mapping, tolerating still-exported buffer views.

    Dropping the store's own views is usually enough for ``mmap.close`` to
    succeed; if the caller still holds an array pulled out earlier, closing
    would invalidate it mid-use, so the mapping is left to the garbage
    collector instead of raising.
    """
    try:
        mm.close()
    except BufferError:  # pragma: no cover - caller still holds views
        pass


#: Registry of backend names accepted by :func:`open_store` and by
#: :class:`~repro.graph.digraph.DiGraph`'s ``store=`` parameter.
#: ``mmap`` is attach-only (it needs a snapshot file, not loose arrays), so
#: it is deliberately absent here; use ``load_snapshot(..., store="mmap")``.
_BACKENDS = {
    HeapStore.backend: HeapStore,
    SharedMemoryStore.backend: SharedMemoryStore,
    "shm": SharedMemoryStore,
    CompressedStore.backend: CompressedStore,
}


def open_store(
    backend: str,
    arrays: Mapping[str, np.ndarray],
    meta: Optional[Mapping[str, object]] = None,
) -> GraphStore:
    """Pack ``arrays`` into a store of the named backend."""
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise GraphError(
            f"unknown graph store backend {backend!r}; "
            f"available: {', '.join(sorted(_BACKENDS))}"
        ) from None
    return cls.pack(arrays, meta)
