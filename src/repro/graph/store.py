"""Pluggable array storage backends for graph and distance-cache data.

:class:`~repro.graph.digraph.DiGraph` keeps its CSR arrays inside a
:class:`GraphStore`.  Two backends exist:

* :class:`HeapStore` — plain process-private numpy arrays (the default; the
  behaviour the package always had);
* :class:`SharedMemoryStore` — one ``multiprocessing.shared_memory`` segment
  holding every array back to back, so a graph (or a distance cache) can be
  *published once* and attached zero-copy by any number of worker processes.

A shared store is described by a small picklable :class:`StoreHandle` (the
segment name plus an array layout); sending the handle to a worker costs a
few hundred bytes regardless of graph size, which is the pattern large
compressed-graph systems (e.g. swh-graph) use to fan one immutable graph
image out to many readers.

Lifecycle rules
---------------

* The process that calls :meth:`SharedMemoryStore.pack` *owns* the segment
  and must eventually call :meth:`SharedMemoryStore.unlink` (or
  ``close(unlink=True)``), otherwise the segment outlives the process.
* Attachers call :meth:`SharedMemoryStore.attach` and ``close()`` when done;
  closing an attachment never destroys the segment.
* On Python < 3.13 the stdlib registers *attached* segments with the
  ``resource_tracker``, which would unlink them when the attaching process
  exits — destroying the owner's data.  :meth:`attach` therefore unregisters
  the segment from the tracker of the attaching process; only the owner is
  responsible for cleanup.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = [
    "GraphStore",
    "HeapStore",
    "SharedMemoryStore",
    "StoreHandle",
    "open_store",
]

#: 8-byte alignment keeps every int64/float64 view naturally aligned.
_ALIGNMENT = 8


def _aligned(size: int) -> int:
    return (size + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


#: Serialises the pre-3.13 registration-suppressing monkeypatch below:
#: without it, two concurrent attaches could each save the other's no-op
#: as the "original" and leave tracking disabled process-wide.
_ATTACH_LOCK = threading.Lock()


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it for cleanup.

    Before Python 3.13 (which added ``track=False``) the stdlib registers
    *every* opened segment with the resource tracker.  For an attacher that
    is wrong twice over: a ``spawn`` child's own tracker would unlink the
    owner's segment when the child exits, and a ``fork`` child shares the
    owner's tracker, so unregistering after the fact would drop the owner's
    registration instead.  Suppressing registration during the open leaves
    cleanup responsibility exactly where it belongs — with the owner.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


@dataclass(frozen=True)
class StoreHandle:
    """Picklable description of a shared-memory array pack.

    ``layout`` maps each array name to ``(offset, shape, dtype_str)`` inside
    the segment; ``meta`` carries small picklable extras (external vertex
    ids, edge labels, ...) that ride the pickle instead of the segment.
    """

    segment_name: str
    layout: Dict[str, Tuple[int, Tuple[int, ...], str]]
    meta: Dict[str, object] = field(default_factory=dict)

    def attach(self) -> "SharedMemoryStore":
        """Open the described segment in this process (read-only views)."""
        return SharedMemoryStore.attach(self)


class GraphStore:
    """Common interface of the array storage backends."""

    #: Short backend identifier (``"heap"`` / ``"shared_memory"``).
    backend: str = "abstract"
    #: Whether :meth:`handle` can describe this store to another process.
    shareable: bool = False

    def arrays(self) -> Dict[str, np.ndarray]:
        """The stored arrays by name."""
        raise NotImplementedError

    def get(self, name: str) -> np.ndarray:
        """One stored array by name."""
        return self.arrays()[name]

    def nbytes(self) -> Dict[str, int]:
        """Per-array storage size in bytes."""
        return {name: int(array.nbytes) for name, array in self.arrays().items()}

    def handle(self) -> StoreHandle:
        """A picklable handle another process can attach (shareable stores)."""
        raise GraphError(f"{self.backend!r} store cannot be shared across processes")

    def close(self, *, unlink: bool = False) -> None:
        """Release this process's mapping (and the segment when ``unlink``)."""

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HeapStore(GraphStore):
    """Process-private storage: arrays live on the ordinary Python heap."""

    backend = "heap"
    shareable = False

    def __init__(self, arrays: Optional[Mapping[str, np.ndarray]] = None) -> None:
        self._arrays: Dict[str, np.ndarray] = {}
        if arrays:
            for name, array in arrays.items():
                self._arrays[name] = np.ascontiguousarray(array)

    @classmethod
    def pack(
        cls, arrays: Mapping[str, np.ndarray], meta: Optional[Mapping[str, object]] = None
    ) -> "HeapStore":
        """Build a heap store from ``arrays`` (``meta`` is kept for symmetry)."""
        store = cls(arrays)
        store.meta = dict(meta or {})
        return store

    def arrays(self) -> Dict[str, np.ndarray]:
        return self._arrays


class SharedMemoryStore(GraphStore):
    """All arrays packed back to back into one shared-memory segment.

    Create with :meth:`pack` (the owner) or :meth:`attach` (a reader).  The
    arrays returned by :meth:`arrays` are views straight into the segment —
    attachment copies nothing, no matter how large the graph is.  Attached
    views are marked read-only; the pack is a *read-mostly* publication, not
    a coordination channel.
    """

    backend = "shared_memory"
    shareable = True

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]],
        meta: Dict[str, object],
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._layout = layout
        self.meta = meta
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._views: Dict[str, np.ndarray] = {}
        for name, (offset, shape, dtype) in layout.items():
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            if not owner:
                view.flags.writeable = False
            self._views[name] = view

    # -- construction -------------------------------------------------- #
    @classmethod
    def pack(
        cls,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "SharedMemoryStore":
        """Copy ``arrays`` into a fresh segment owned by this process."""
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        materialised: Dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            materialised[name] = array
            layout[name] = (offset, tuple(array.shape), array.dtype.str)
            offset = _aligned(offset + array.nbytes)
        # A zero-byte segment is invalid; keep one alignment unit for the
        # degenerate all-empty-arrays case (e.g. an edgeless graph).
        shm = shared_memory.SharedMemory(create=True, size=max(offset, _ALIGNMENT))
        store = cls(shm, layout, dict(meta or {}), owner=True)
        for name, array in materialised.items():
            if array.size:
                store._views[name][...] = array
        return store

    @classmethod
    def attach(cls, handle: StoreHandle) -> "SharedMemoryStore":
        """Map an existing segment described by ``handle`` into this process."""
        try:
            shm = _open_untracked(handle.segment_name)
        except FileNotFoundError:
            raise GraphError(
                f"shared graph segment {handle.segment_name!r} does not exist "
                "(the owner may have unlinked it already)"
            ) from None
        return cls(shm, dict(handle.layout), dict(handle.meta), owner=False)

    # -- GraphStore interface ------------------------------------------ #
    def arrays(self) -> Dict[str, np.ndarray]:
        return self._views

    def handle(self) -> StoreHandle:
        return StoreHandle(self._shm.name, dict(self._layout), dict(self.meta))

    @property
    def segment_name(self) -> str:
        """Name of the backing shared-memory segment."""
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        """``True`` in the process that created (and must unlink) the segment."""
        return self._owner

    @property
    def is_unlinked(self) -> bool:
        """``True`` once the segment name was removed; new attaches will fail."""
        return self._unlinked

    def close(self, *, unlink: bool = False) -> None:
        """Drop this process's mapping; owners may also destroy the segment."""
        if self._closed:
            return
        self._closed = True
        self._views = {}
        self._shm.close()
        if unlink and self._owner:
            self.unlink()

    def unlink(self) -> None:
        """Remove the segment name (owner only).

        Existing mappings — the owner's included — stay valid until each
        process closes its attachment; only *new* attaches become
        impossible, and the memory is freed once the last mapping goes.
        """
        if not self._owner:
            raise GraphError("only the owning process may unlink a shared segment")
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            if not self._closed:
                self._shm.close()
        except Exception:
            pass


#: Registry of backend names accepted by :func:`open_store` and by
#: :class:`~repro.graph.digraph.DiGraph`'s ``store=`` parameter.
_BACKENDS = {
    HeapStore.backend: HeapStore,
    SharedMemoryStore.backend: SharedMemoryStore,
    "shm": SharedMemoryStore,
}


def open_store(
    backend: str,
    arrays: Mapping[str, np.ndarray],
    meta: Optional[Mapping[str, object]] = None,
) -> GraphStore:
    """Pack ``arrays`` into a store of the named backend."""
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise GraphError(
            f"unknown graph store backend {backend!r}; "
            f"available: {', '.join(sorted(_BACKENDS))}"
        ) from None
    return cls.pack(arrays, meta)
