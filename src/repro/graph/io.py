"""Reading and writing SNAP-style edge lists.

The paper's datasets are distributed as whitespace-separated edge lists with
``#`` comment headers (SNAP) or ``%`` headers (networkrepository).  The
reader accepts both, plus optional per-edge weight and label columns, and
transparently handles gzip-compressed files.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Optional, Tuple, Union

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_lines"]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def parse_edge_lines(
    lines: Iterable[str],
    *,
    weighted: bool = False,
    labeled: bool = False,
) -> Iterable[Tuple[str, str, Optional[float], Optional[str]]]:
    """Yield ``(source, target, weight, label)`` tuples from raw text lines.

    Lines that are empty or start with a comment prefix are skipped.  Columns
    beyond the requested ones are ignored, matching the loose formats found
    in the wild.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise GraphError(f"line {line_number}: expected at least two columns, got {line!r}")
        source, target = parts[0], parts[1]
        weight: Optional[float] = None
        label: Optional[str] = None
        column = 2
        if weighted:
            if len(parts) <= column:
                raise GraphError(f"line {line_number}: missing weight column")
            try:
                weight = float(parts[column])
            except ValueError as exc:
                raise GraphError(f"line {line_number}: invalid weight {parts[column]!r}") from exc
            column += 1
        if labeled:
            if len(parts) <= column:
                raise GraphError(f"line {line_number}: missing label column")
            label = parts[column]
        yield source, target, weight, label


def read_edge_list(
    path: PathLike,
    *,
    weighted: bool = False,
    labeled: bool = False,
    as_int_ids: bool = True,
    allow_self_loops: bool = False,
) -> DiGraph:
    """Load a directed graph from a SNAP-style edge list file.

    ``as_int_ids`` converts vertex tokens to integers when possible, which
    keeps the external-id mapping compact for the common numeric datasets.
    """
    builder = GraphBuilder(allow_self_loops=allow_self_loops)
    with _open_text(path, "r") as handle:
        for source, target, weight, label in parse_edge_lines(
            handle, weighted=weighted, labeled=labeled
        ):
            if as_int_ids:
                try:
                    source = int(source)  # type: ignore[assignment]
                    target = int(target)  # type: ignore[assignment]
                except ValueError:
                    pass
            builder.add_edge(source, target, weight=weight, label=label)
    if builder.num_vertices == 0:
        raise GraphError(f"no edges found in {path}")
    return builder.build()


def write_edge_list(
    graph: DiGraph,
    path: PathLike,
    *,
    include_weights: bool = False,
    include_labels: bool = False,
    header: Optional[str] = None,
) -> int:
    """Write the graph as an edge list; return the number of edges written."""
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# vertices: {graph.num_vertices} edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            fields = [str(graph.to_external(u)), str(graph.to_external(v))]
            if include_weights:
                fields.append(repr(graph.edge_weight(u, v)))
            if include_labels:
                fields.append(str(graph.edge_label(u, v, default="-")))
            handle.write(" ".join(fields) + "\n")
            count += 1
    return count
