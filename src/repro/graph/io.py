"""Reading and writing graphs: SNAP-style edge lists and binary snapshots.

The paper's datasets are distributed as whitespace-separated edge lists with
``#`` comment headers (SNAP) or ``%`` headers (networkrepository).  The
reader accepts both, plus optional per-edge weight and label columns, and
transparently handles gzip-compressed files.

For serving deployments the text formats are the wrong tool: parsing and
builder relabelling dominate start-up.  :func:`save_npz` / :func:`load_npz`
persist the CSR arrays directly (the immutable "graph image" pattern of
compressed-graph serving systems), and ``load_npz(..., store="shared_memory")``
materialises the image straight into a shareable
:class:`~repro.graph.store.GraphStore` so a fleet of worker processes can
attach it without ever holding a private copy.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def parse_edge_lines(
    lines: Iterable[str],
    *,
    weighted: bool = False,
    labeled: bool = False,
) -> Iterable[Tuple[str, str, Optional[float], Optional[str]]]:
    """Yield ``(source, target, weight, label)`` tuples from raw text lines.

    Lines that are empty or start with a comment prefix are skipped.  Columns
    beyond the requested ones are ignored, matching the loose formats found
    in the wild.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise GraphError(f"line {line_number}: expected at least two columns, got {line!r}")
        source, target = parts[0], parts[1]
        weight: Optional[float] = None
        label: Optional[str] = None
        column = 2
        if weighted:
            if len(parts) <= column:
                raise GraphError(f"line {line_number}: missing weight column")
            try:
                weight = float(parts[column])
            except ValueError as exc:
                raise GraphError(f"line {line_number}: invalid weight {parts[column]!r}") from exc
            column += 1
        if labeled:
            if len(parts) <= column:
                raise GraphError(f"line {line_number}: missing label column")
            label = parts[column]
        yield source, target, weight, label


def read_edge_list(
    path: PathLike,
    *,
    weighted: bool = False,
    labeled: bool = False,
    as_int_ids: bool = True,
    allow_self_loops: bool = False,
) -> DiGraph:
    """Load a directed graph from a SNAP-style edge list file.

    ``as_int_ids`` converts vertex tokens to integers when possible, which
    keeps the external-id mapping compact for the common numeric datasets.
    """
    builder = GraphBuilder(allow_self_loops=allow_self_loops)
    with _open_text(path, "r") as handle:
        for source, target, weight, label in parse_edge_lines(
            handle, weighted=weighted, labeled=labeled
        ):
            if as_int_ids:
                try:
                    source = int(source)  # type: ignore[assignment]
                    target = int(target)  # type: ignore[assignment]
                except ValueError:
                    pass
            builder.add_edge(source, target, weight=weight, label=label)
    if builder.num_vertices == 0:
        raise GraphError(f"no edges found in {path}")
    return builder.build()


def save_npz(graph: DiGraph, path: PathLike) -> Path:
    """Persist ``graph`` as a compressed binary CSR snapshot.

    External vertex ids are stored when they are all integers or all
    strings (the shapes produced by the edge-list readers); exotic hashable
    ids do not fit an npz array and raise :class:`GraphError`.  Edge labels
    travel as a string column plus a missing-value mask, so ``None`` and
    ``""`` stay distinguishable.
    """
    path = Path(path)
    out_indptr, out_indices = graph.out_csr()
    in_indptr, in_indices = graph.in_csr()
    payload = {
        "num_vertices": np.asarray([graph.num_vertices], dtype=np.int64),
        "out_indptr": out_indptr,
        "out_indices": out_indices,
        "in_indptr": in_indptr,
        "in_indices": in_indices,
    }
    if graph.has_edge_weights:
        # The CSR-aligned weights array exists as-is; no per-edge loop.
        payload["edge_weights"] = graph._csr_arrays()["edge_weights"]
    if graph.has_external_ids:
        ids = [graph.to_external(v) for v in graph.vertices()]
        if all(isinstance(vid, (int, np.integer)) for vid in ids):
            payload["vertex_ids"] = np.asarray(ids, dtype=np.int64)
            payload["vertex_id_kind"] = np.asarray(["int"])
        elif all(isinstance(vid, str) for vid in ids):
            payload["vertex_ids"] = np.asarray(ids, dtype=np.str_)
            payload["vertex_id_kind"] = np.asarray(["str"])
        else:
            raise GraphError(
                "save_npz supports integer or string vertex ids only; "
                "write an edge list for graphs with other id types"
            )
    if graph.has_edge_labels:
        labels = graph._edge_labels  # CSR-aligned, same layout the writer needs
        payload["edge_label_mask"] = np.asarray(
            [label is not None for label in labels], dtype=bool
        )
        payload["edge_labels"] = np.asarray(
            [label if label is not None else "" for label in labels], dtype=np.str_
        )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return path


def load_npz(path: PathLike, *, store: Optional[str] = None) -> DiGraph:
    """Load a :func:`save_npz` snapshot, optionally into a store backend.

    ``store="shared_memory"`` copies the arrays into a fresh shared-memory
    segment during construction, so the loading process can immediately
    :meth:`~repro.graph.digraph.DiGraph.share` the graph with worker
    processes without holding a second private copy.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        num_vertices = int(data["num_vertices"][0])
        edge_weights = data["edge_weights"] if "edge_weights" in data.files else None
        vertex_ids = None
        if "vertex_ids" in data.files:
            raw_ids = data["vertex_ids"]
            kind = str(data["vertex_id_kind"][0]) if "vertex_id_kind" in data.files else "int"
            vertex_ids = (
                [int(vid) for vid in raw_ids]
                if kind == "int"
                else [str(vid) for vid in raw_ids]
            )
        edge_labels = None
        if "edge_labels" in data.files:
            mask = data["edge_label_mask"]
            edge_labels = [
                str(label) if present else None
                for label, present in zip(data["edge_labels"], mask)
            ]
        return DiGraph(
            num_vertices,
            data["out_indptr"],
            data["out_indices"],
            data["in_indptr"],
            data["in_indices"],
            edge_weights=edge_weights,
            edge_labels=edge_labels,
            vertex_ids=vertex_ids,
            store=store,
        )


def write_edge_list(
    graph: DiGraph,
    path: PathLike,
    *,
    include_weights: bool = False,
    include_labels: bool = False,
    header: Optional[str] = None,
) -> int:
    """Write the graph as an edge list; return the number of edges written."""
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# vertices: {graph.num_vertices} edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            fields = [str(graph.to_external(u)), str(graph.to_external(v))]
            if include_weights:
                fields.append(repr(graph.edge_weight(u, v)))
            if include_labels:
                fields.append(str(graph.edge_label(u, v, default="-")))
            handle.write(" ".join(fields) + "\n")
            count += 1
    return count
