"""Reading and writing graphs: SNAP-style edge lists and binary snapshots.

The paper's datasets are distributed as whitespace-separated edge lists with
``#`` comment headers (SNAP) or ``%`` headers (networkrepository).  The
reader accepts both, plus optional per-edge weight and label columns, and
transparently handles gzip-compressed files.

For serving deployments the text formats are the wrong tool: parsing and
builder relabelling dominate start-up.  The binary image format of choice is
the page-aligned snapshot (:mod:`repro.graph.snapshot`), which memory-maps
in milliseconds; :func:`save_npz` / :func:`load_npz` keep the older
compressed-``.npz`` image working as **deprecated** shims.  The loader
decompresses each member *directly into* the target store's buffers
(``readinto`` on preallocated heap or shared-memory views) rather than
materialising a private heap copy first and packing it afterwards.
"""

from __future__ import annotations

import gzip
import warnings
import zipfile
from pathlib import Path
from typing import IO, Dict, Iterable, Optional, Tuple, Union

import numpy as np
from numpy.lib import format as npy_format

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.store import SharedMemoryStore

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "parse_edge_lines",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def parse_edge_lines(
    lines: Iterable[str],
    *,
    weighted: bool = False,
    labeled: bool = False,
) -> Iterable[Tuple[str, str, Optional[float], Optional[str]]]:
    """Yield ``(source, target, weight, label)`` tuples from raw text lines.

    Lines that are empty or start with a comment prefix are skipped.  Columns
    beyond the requested ones are ignored, matching the loose formats found
    in the wild.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise GraphError(f"line {line_number}: expected at least two columns, got {line!r}")
        source, target = parts[0], parts[1]
        weight: Optional[float] = None
        label: Optional[str] = None
        column = 2
        if weighted:
            if len(parts) <= column:
                raise GraphError(f"line {line_number}: missing weight column")
            try:
                weight = float(parts[column])
            except ValueError as exc:
                raise GraphError(f"line {line_number}: invalid weight {parts[column]!r}") from exc
            column += 1
        if labeled:
            if len(parts) <= column:
                raise GraphError(f"line {line_number}: missing label column")
            label = parts[column]
        yield source, target, weight, label


def read_edge_list(
    path: PathLike,
    *,
    weighted: bool = False,
    labeled: bool = False,
    as_int_ids: bool = True,
    allow_self_loops: bool = False,
) -> DiGraph:
    """Load a directed graph from a SNAP-style edge list file.

    ``as_int_ids`` converts vertex tokens to integers when possible, which
    keeps the external-id mapping compact for the common numeric datasets.
    """
    builder = GraphBuilder(allow_self_loops=allow_self_loops)
    with _open_text(path, "r") as handle:
        for source, target, weight, label in parse_edge_lines(
            handle, weighted=weighted, labeled=labeled
        ):
            if as_int_ids:
                try:
                    source = int(source)  # type: ignore[assignment]
                    target = int(target)  # type: ignore[assignment]
                except ValueError:
                    pass
            builder.add_edge(source, target, weight=weight, label=label)
    if builder.num_vertices == 0:
        raise GraphError(f"no edges found in {path}")
    return builder.build()


def save_npz(graph: DiGraph, path: PathLike) -> Path:
    """Deprecated: persist ``graph`` as a compressed ``.npz`` CSR image.

    Use :func:`repro.graph.snapshot.save_snapshot` (or ``repro convert``)
    instead — snapshots memory-map on load instead of decompressing.
    """
    warnings.warn(
        "save_npz is deprecated; write a mappable snapshot with "
        "repro.graph.snapshot.save_snapshot (or `repro convert`)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _save_npz(graph, path)


def _save_npz(graph: DiGraph, path: PathLike) -> Path:
    """Non-deprecated internal writer behind the :func:`save_npz` shim.

    External vertex ids are stored when they are all integers or all
    strings (the shapes produced by the edge-list readers); exotic hashable
    ids do not fit an npz array and raise :class:`GraphError`.  Edge labels
    travel as a string column plus a missing-value mask, so ``None`` and
    ``""`` stay distinguishable.
    """
    path = Path(path)
    out_indptr, out_indices = graph.out_csr()
    in_indptr, in_indices = graph.in_csr()
    payload = {
        "num_vertices": np.asarray([graph.num_vertices], dtype=np.int64),
        "out_indptr": out_indptr,
        "out_indices": out_indices,
        "in_indptr": in_indptr,
        "in_indices": in_indices,
    }
    if graph.has_edge_weights:
        # The CSR-aligned weights array exists as-is; no per-edge loop.
        payload["edge_weights"] = graph._csr_arrays()["edge_weights"]
    if graph.has_external_ids:
        ids = [graph.to_external(v) for v in graph.vertices()]
        if all(isinstance(vid, (int, np.integer)) for vid in ids):
            payload["vertex_ids"] = np.asarray(ids, dtype=np.int64)
            payload["vertex_id_kind"] = np.asarray(["int"])
        elif all(isinstance(vid, str) for vid in ids):
            payload["vertex_ids"] = np.asarray(ids, dtype=np.str_)
            payload["vertex_id_kind"] = np.asarray(["str"])
        else:
            raise GraphError(
                "save_npz supports integer or string vertex ids only; "
                "write an edge list for graphs with other id types"
            )
    if graph.has_edge_labels:
        labels = graph._edge_labels  # CSR-aligned, same layout the writer needs
        payload["edge_label_mask"] = np.asarray(
            [label is not None for label in labels], dtype=bool
        )
        payload["edge_labels"] = np.asarray(
            [label if label is not None else "" for label in labels], dtype=np.str_
        )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return path


def load_npz(path: PathLike, *, store: Optional[str] = None) -> DiGraph:
    """Deprecated: load a :func:`save_npz` image, optionally into a store.

    Use :func:`repro.graph.snapshot.load_snapshot` on a converted snapshot
    instead — it attaches by memory-mapping instead of decompressing.
    """
    warnings.warn(
        "load_npz is deprecated; convert the image with `repro convert` and "
        "open it with repro.graph.snapshot.load_snapshot",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_npz(path, store=store)


#: The O(|V| + |E|) members that belong in a graph store; everything else in
#: an ``.npz`` image is per-element metadata read onto the heap.
_BULK_MEMBERS = ("out_indptr", "out_indices", "in_indptr", "in_indices", "edge_weights")


def _npy_header(fp) -> Tuple[Tuple[int, ...], bool, np.dtype]:
    """Parse one ``.npy`` member header: ``(shape, fortran_order, dtype)``."""
    version = npy_format.read_magic(fp)
    if version == (1, 0):
        return npy_format.read_array_header_1_0(fp)
    if version == (2, 0):
        return npy_format.read_array_header_2_0(fp)
    raise GraphError(f"unsupported .npy member version {version}")


#: Decompression chunk for :func:`_readinto_exact` — bounds the transient
#: buffer (``ZipExtFile.readinto`` would otherwise ``read()`` the whole
#: member into a throwaway bytes object, the very copy this path removes).
_READ_CHUNK = 4 << 20


def _readinto_exact(fp, view: memoryview) -> bool:
    """Fill ``view`` completely from ``fp``; ``False`` on short read."""
    filled = 0
    while filled < len(view):
        count = fp.readinto(view[filled : filled + _READ_CHUNK])
        if not count:
            return False
        filled += count
    return True


def _load_npz(path: PathLike, *, store: Optional[str] = None) -> DiGraph:
    """Non-deprecated internal loader behind the :func:`load_npz` shim.

    The bulk CSR members are decompressed *directly into* their final
    buffers — preallocated heap arrays, or views of a freshly allocated
    shared-memory segment (``store="shared_memory"``) — via ``readinto``,
    so loading costs exactly one copy of each array regardless of the
    target store.  (``store="compressed"`` necessarily decodes to the heap
    first and then block-codes.)
    """
    path = Path(path)
    with zipfile.ZipFile(path) as archive:
        members = {
            name[:-4] if name.endswith(".npy") else name: name
            for name in archive.namelist()
        }
        specs: Dict[str, Tuple[Tuple[int, ...], bool, np.dtype]] = {}
        for key in _BULK_MEMBERS:
            if key not in members:
                continue
            with archive.open(members[key]) as fp:
                specs[key] = _npy_header(fp)

        seg = None
        if store in ("shared_memory", "shm"):
            seg = SharedMemoryStore.allocate(
                {key: (shape, dtype.str) for key, (shape, _, dtype) in specs.items()}
            )
            bulk = seg.arrays()
        else:
            bulk = {
                key: np.empty(shape, dtype=dtype)
                for key, (shape, _, dtype) in specs.items()
            }
        try:
            for key, (shape, fortran, dtype) in specs.items():
                with archive.open(members[key]) as fp:
                    _npy_header(fp)  # skip past the header bytes
                    if fortran and len(shape) > 1:  # pragma: no cover - 1-D in practice
                        bulk[key][...] = npy_format.read_array(fp, allow_pickle=False)
                        continue
                    view = memoryview(bulk[key].reshape(-1)).cast("B")
                    if not _readinto_exact(fp, view):
                        raise GraphError(f"truncated member {key!r} in {path}")

            def read_small(key: str) -> Optional[np.ndarray]:
                if key not in members:
                    return None
                with archive.open(members[key]) as fp:
                    return npy_format.read_array(fp, allow_pickle=False)

            num_vertices = int(read_small("num_vertices")[0])
            vertex_ids = None
            raw_ids = read_small("vertex_ids")
            if raw_ids is not None:
                kind_member = read_small("vertex_id_kind")
                kind = str(kind_member[0]) if kind_member is not None else "int"
                vertex_ids = (
                    [int(vid) for vid in raw_ids]
                    if kind == "int"
                    else [str(vid) for vid in raw_ids]
                )
            edge_labels = None
            raw_labels = read_small("edge_labels")
            if raw_labels is not None:
                mask = read_small("edge_label_mask")
                edge_labels = [
                    str(label) if present else None
                    for label, present in zip(raw_labels, mask)
                ]
            if seg is not None:
                seg.meta.update(
                    {
                        "num_vertices": num_vertices,
                        "edge_labels": edge_labels,
                        "vertex_ids": vertex_ids,
                    }
                )
            return DiGraph(
                num_vertices,
                bulk["out_indptr"],
                bulk["out_indices"],
                bulk["in_indptr"],
                bulk["in_indices"],
                edge_weights=bulk.get("edge_weights"),
                edge_labels=edge_labels,
                vertex_ids=vertex_ids,
                store=seg if seg is not None else store,
            )
        except BaseException:
            if seg is not None:
                seg.close(unlink=True)
            raise


def write_edge_list(
    graph: DiGraph,
    path: PathLike,
    *,
    include_weights: bool = False,
    include_labels: bool = False,
    header: Optional[str] = None,
) -> int:
    """Write the graph as an edge list; return the number of edges written."""
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# vertices: {graph.num_vertices} edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            fields = [str(graph.to_external(u)), str(graph.to_external(v))]
            if include_weights:
                fields.append(repr(graph.edge_weight(u, v)))
            if include_labels:
                fields.append(str(graph.edge_label(u, v, default="-")))
            handle.write(" ".join(fields) + "\n")
            count += 1
    return count
