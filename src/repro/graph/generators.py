"""Seeded synthetic graph generators.

The paper evaluates on fifteen real-world graphs (Table 2) spanning web,
social, citation, interaction, recommendation and biological networks.  Those
datasets cannot be downloaded in this offline environment, so the dataset
registry (:mod:`repro.workloads.datasets`) builds stand-ins from the
generators below.  What matters for reproducing the paper's *shape* of
results is the topology class:

* power-law out-degree (web / social graphs) → very skewed search spaces,
  large gaps between walk and path counts;
* near-uniform sparse degree (citation graphs) → small search spaces;
* dense local clusters (biological / recommendation graphs) → huge result
  counts even for small ``k``.

Every generator is deterministic for a given ``seed`` and returns a
:class:`~repro.graph.digraph.DiGraph` over dense integer vertices.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "power_law_graph",
    "small_world_graph",
    "complete_graph",
    "chain_graph",
    "grid_graph",
    "layered_graph",
    "bipartite_graph",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi(
    num_vertices: int,
    avg_out_degree: float,
    *,
    seed: Optional[int] = None,
    weighted: bool = False,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Directed G(n, m) random graph with ``avg_out_degree * n`` edges.

    Approximates the uniform-degree datasets of the paper (e.g. the citation
    graph ``up``).  Self-loops and duplicate edges are rejected.
    """
    if num_vertices < 2:
        raise GraphError("erdos_renyi requires at least two vertices")
    if avg_out_degree <= 0:
        raise GraphError("avg_out_degree must be positive")
    rng = _rng(seed)
    target_edges = int(round(avg_out_degree * num_vertices))
    max_edges = num_vertices * (num_vertices - 1)
    target_edges = min(target_edges, max_edges)
    builder = GraphBuilder()
    for v in range(num_vertices):
        builder.add_vertex(v)
    attempts = 0
    max_attempts = max(20 * target_edges, 1000)
    while builder.num_edges < target_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        if u == v:
            continue
        builder.add_edge(
            u,
            v,
            weight=float(rng.uniform(0.0, 1.0)) if weighted else None,
            label=str(rng.choice(labels)) if labels else None,
        )
    return builder.build()


def power_law_graph(
    num_vertices: int,
    avg_out_degree: float,
    *,
    exponent: float = 2.2,
    seed: Optional[int] = None,
    weighted: bool = False,
    labels: Optional[Sequence[str]] = None,
) -> DiGraph:
    """Directed graph with power-law out- and in-degree distributions.

    Uses a Chung-Lu style model: each vertex draws an expected degree from a
    Zipf-like distribution with the given ``exponent`` and edges connect
    endpoints sampled proportionally to those expected degrees.  This mirrors
    the heavy hubs of the paper's social and web datasets (``ep``, ``sl``,
    ``lj``, ``uk`` ...), which is what makes their hard query sets hard.
    """
    if num_vertices < 2:
        raise GraphError("power_law_graph requires at least two vertices")
    if avg_out_degree <= 0:
        raise GraphError("avg_out_degree must be positive")
    if exponent <= 1.0:
        raise GraphError("exponent must be greater than 1")
    rng = _rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights_vec = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(weights_vec)
    probabilities = weights_vec / weights_vec.sum()
    target_edges = min(int(round(avg_out_degree * num_vertices)), num_vertices * (num_vertices - 1))
    builder = GraphBuilder()
    for v in range(num_vertices):
        builder.add_vertex(v)
    attempts = 0
    max_attempts = max(30 * target_edges, 1000)
    while builder.num_edges < target_edges and attempts < max_attempts:
        attempts += 1
        batch = min(4096, max_attempts - attempts + 1)
        sources = rng.choice(num_vertices, size=batch, p=probabilities)
        targets = rng.choice(num_vertices, size=batch, p=probabilities)
        for u, v in zip(sources, targets):
            if builder.num_edges >= target_edges:
                break
            u, v = int(u), int(v)
            if u == v:
                continue
            builder.add_edge(
                u,
                v,
                weight=float(rng.uniform(0.0, 1.0)) if weighted else None,
                label=str(rng.choice(labels)) if labels else None,
            )
        attempts += batch - 1
    return builder.build()


def small_world_graph(
    num_vertices: int,
    base_degree: int,
    *,
    rewire_probability: float = 0.1,
    seed: Optional[int] = None,
) -> DiGraph:
    """Directed Watts-Strogatz style ring lattice with random rewiring.

    Produces short diameters with local clustering, similar to the
    interaction graphs in the paper (``tr``, ``wt``).
    """
    if num_vertices < 3:
        raise GraphError("small_world_graph requires at least three vertices")
    if base_degree < 1:
        raise GraphError("base_degree must be at least 1")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire_probability must lie in [0, 1]")
    rng = _rng(seed)
    builder = GraphBuilder()
    for v in range(num_vertices):
        builder.add_vertex(v)
    for u in range(num_vertices):
        for offset in range(1, base_degree + 1):
            v = (u + offset) % num_vertices
            if rng.random() < rewire_probability:
                v = int(rng.integers(num_vertices))
                if v == u:
                    v = (u + offset) % num_vertices
            builder.add_edge(u, v)
    return builder.build()


def complete_graph(num_vertices: int) -> DiGraph:
    """Complete directed graph (every ordered pair is an edge).

    The worst case for walk-based bounds; used in complexity-oriented tests.
    """
    if num_vertices < 2:
        raise GraphError("complete_graph requires at least two vertices")
    builder = GraphBuilder()
    for u in range(num_vertices):
        for v in range(num_vertices):
            if u != v:
                builder.add_edge(u, v)
    return builder.build()


def chain_graph(num_vertices: int) -> DiGraph:
    """Simple directed chain ``0 -> 1 -> ... -> n-1``."""
    if num_vertices < 2:
        raise GraphError("chain_graph requires at least two vertices")
    builder = GraphBuilder()
    for v in range(num_vertices - 1):
        builder.add_edge(v, v + 1)
    return builder.build()


def grid_graph(rows: int, cols: int) -> DiGraph:
    """Directed grid with edges pointing right and down.

    A DAG with an exponential number of s-t paths between opposite corners —
    convenient for correctness tests with known path counts (binomial
    coefficients).
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    builder = GraphBuilder()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            builder.add_vertex(v)
            if c + 1 < cols:
                builder.add_edge(v, r * cols + c + 1)
            if r + 1 < rows:
                builder.add_edge(v, (r + 1) * cols + c)
    return builder.build()


def layered_graph(
    num_layers: int,
    layer_width: int,
    *,
    connection_probability: float = 1.0,
    seed: Optional[int] = None,
) -> DiGraph:
    """Layered DAG where edges connect consecutive layers.

    Vertex ``0`` is a single source in front of the first layer and the last
    vertex is a single sink after the final layer.  With full connectivity
    the number of source-sink paths is ``layer_width ** num_layers`` which
    grows quickly — a controllable way to create queries with huge result
    counts (the ``ye``-style workloads).
    """
    if num_layers < 1 or layer_width < 1:
        raise GraphError("num_layers and layer_width must be positive")
    if not 0.0 < connection_probability <= 1.0:
        raise GraphError("connection_probability must lie in (0, 1]")
    rng = _rng(seed)
    builder = GraphBuilder()
    source = builder.add_vertex("source")
    layers = []
    for layer in range(num_layers):
        layers.append([builder.add_vertex(f"L{layer}_{i}") for i in range(layer_width)])
    sink = builder.add_vertex("sink")
    for v in layers[0]:
        builder.add_edge("source", builder._vertex_ids[v])
    for layer_index in range(num_layers - 1):
        for u in layers[layer_index]:
            for v in layers[layer_index + 1]:
                if connection_probability >= 1.0 or rng.random() < connection_probability:
                    builder.add_edge(builder._vertex_ids[u], builder._vertex_ids[v])
    for v in layers[-1]:
        builder.add_edge(builder._vertex_ids[v], "sink")
    graph = builder.build()
    # Internal ids follow insertion order, so source == 0 and sink == n - 1.
    assert graph.to_internal("source") == source
    assert graph.to_internal("sink") == sink
    return graph


def bipartite_graph(
    left: int,
    right: int,
    *,
    connection_probability: float = 0.3,
    seed: Optional[int] = None,
) -> DiGraph:
    """Random directed bipartite graph (left -> right and right -> left edges).

    Emulates the recommendation dataset ``da`` (user-item interactions), in
    which odd-length cycles are absent and most paths alternate sides.
    """
    if left < 1 or right < 1:
        raise GraphError("both sides of the bipartite graph must be non-empty")
    if not 0.0 < connection_probability <= 1.0:
        raise GraphError("connection_probability must lie in (0, 1]")
    rng = _rng(seed)
    builder = GraphBuilder()
    for v in range(left + right):
        builder.add_vertex(v)
    for u in range(left):
        for v in range(left, left + right):
            if rng.random() < connection_probability:
                builder.add_edge(u, v)
            if rng.random() < connection_probability:
                builder.add_edge(v, u)
    return builder.build()
