"""Delta + varint block coding of CSR neighbour arrays.

Web-scale graph stores (WebGraph, swh-graph) serve tens of billions of
edges by never materialising flat successor arrays: each sorted neighbour
list is gap-encoded (``v[i] - v[i-1]``) and the gaps written as LEB128-style
varints, cut into fixed-size blocks so a reader can decode any region
without touching the rest of the stream.  This module is the numpy port of
that layout used by :class:`~repro.graph.store.CompressedStore`:

* values are grouped into blocks of at most :data:`BLOCK_VALUES` entries;
  blocks never span a CSR row, so any row is a whole number of blocks;
* the *first* value of every block is kept uncompressed in an int64
  ``anchors`` array (the "first-value anchor"), letting a block decode
  without its predecessor and supporting binary search by value;
* the remaining values of a block are stored as varint gaps from their
  predecessor in one contiguous ``uint8`` stream;
* an int64 ``offsets`` array holds the byte offset of every block's gap run
  (the "skip pointers"), and ``starts`` the value index where each block
  begins — blocks tile the value space ``[0, E)`` contiguously.

Both encoding and decoding are fully vectorised (no per-edge Python loop):
the varint decoder classifies every stream byte by its value id in one
``cumsum`` pass, and block reconstruction is one segmented ``cumsum`` over
gaps with anchors spliced in at block starts.

:class:`CompressedIndices` wraps the four arrays behind enough of the
``ndarray`` protocol (``__getitem__`` with ints / slices / index arrays /
boolean masks, ``__array__``, ``nbytes``) that the CSR consumers —
``ragged_gather``, the level-synchronous BFS, the index builder, binary
edge search — run unchanged on a compressed graph, decoding only the
blocks a traversal actually touches into a small reusable buffer.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["BLOCK_VALUES", "CompressedIndices", "encode_blocked", "encode_varints", "decode_varints"]

#: Values per block.  Small enough that decoding one row of a sparse graph
#: touches a handful of cache lines; large enough that the 16 bytes of
#: per-block anchor + skip pointer amortise to a fraction of a byte per edge
#: on dense rows.
BLOCK_VALUES = 64

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U8 = np.empty(0, dtype=np.uint8)


def encode_varints(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """LEB128-encode non-negative int64 ``values`` into one uint8 stream.

    Returns ``(stream, ends)`` where ``ends[i]`` is the byte offset just
    past value ``i``.  Vectorised: one pass to size every varint, then one
    scatter per byte position (at most 10 for int64).
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return _EMPTY_U8, _EMPTY_I64
    if values.min() < 0:
        raise ValueError("varint coding requires non-negative values")
    nbytes = np.ones(len(values), dtype=np.int64)
    shifted = values >> 7
    while shifted.any():
        nbytes[shifted > 0] += 1
        shifted >>= 7
    ends = np.cumsum(nbytes)
    stream = np.zeros(int(ends[-1]), dtype=np.uint8)
    starts = ends - nbytes
    for j in range(int(nbytes.max())):
        sel = nbytes > j
        chunk = (values[sel] >> (7 * j)) & 0x7F
        continues = (nbytes[sel] > j + 1).astype(np.uint8) << 7
        stream[starts[sel] + j] = chunk.astype(np.uint8) | continues
    return stream, ends


def decode_varints(stream: np.ndarray) -> np.ndarray:
    """Decode a uint8 varint ``stream`` back into an int64 value array.

    The stream must consist of whole varints.  Vectorised: every byte is
    assigned to its value by a ``cumsum`` over the continuation bits, then
    the 7-bit payloads are scattered into the output with their shifts.
    """
    stream = np.asarray(stream, dtype=np.uint8)
    if stream.size == 0:
        return _EMPTY_I64
    is_last = (stream & 0x80) == 0
    if not is_last[-1]:
        raise ValueError("truncated varint stream")
    value_of_byte = np.cumsum(is_last) - is_last
    num_values = int(is_last.sum())
    value_start = np.empty(num_values, dtype=np.int64)
    value_start[0] = 0
    if num_values > 1:
        value_start[1:] = np.flatnonzero(is_last)[:-1] + 1
    shifts = 7 * (np.arange(len(stream), dtype=np.int64) - value_start[value_of_byte])
    payload = (stream & 0x7F).astype(np.int64) << shifts
    values = np.zeros(num_values, dtype=np.int64)
    np.add.at(values, value_of_byte, payload)
    return values


def encode_blocked(
    indptr: np.ndarray, indices: np.ndarray, *, block_values: int = BLOCK_VALUES
) -> Dict[str, np.ndarray]:
    """Gap/varint-encode CSR ``indices`` into the blocked layout.

    Rows must be sorted ascending (the :class:`DiGraph` invariant).  Returns
    the four arrays of the layout::

        stream   uint8   varint gaps, block-first values excluded
        offsets  int64   nblocks + 1 byte offsets into ``stream``
        anchors  int64   first value of every block
        starts   int64   nblocks + 1 value-index boundaries (tiles [0, E))

    ``starts`` is derivable from ``indptr`` but storing it keeps attachment
    free of a decode pass; it is 16 bytes per block, counted in the
    compression ratio.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    num_edges = len(indices)
    degrees = np.diff(indptr)
    blocks_per_row = (degrees + block_values - 1) // block_values
    num_blocks = int(blocks_per_row.sum())
    if num_blocks == 0:
        return {
            "stream": _EMPTY_U8,
            "offsets": np.zeros(1, dtype=np.int64),
            "anchors": _EMPTY_I64,
            "starts": np.zeros(1, dtype=np.int64),
        }
    block_row = np.repeat(np.arange(len(degrees), dtype=np.int64), blocks_per_row)
    row_first_block = np.cumsum(blocks_per_row) - blocks_per_row
    within = np.arange(num_blocks, dtype=np.int64) - row_first_block[block_row]
    starts = indptr[block_row] + within * block_values
    anchors = indices[starts]

    # Gaps: every value that does not start a block, as a delta from its
    # predecessor (which by construction lies in the same block).
    is_start = np.zeros(num_edges, dtype=bool)
    is_start[starts] = True
    gaps = np.empty(num_edges, dtype=np.int64)
    gaps[0] = 0
    gaps[1:] = indices[1:] - indices[:-1]
    gap_values = gaps[~is_start]
    if gap_values.size and gap_values.min() <= 0:
        raise ValueError("blocked coding requires strictly ascending CSR rows")
    stream, ends = encode_varints(gap_values)

    # Block j's gap run starts at stream value index starts[j] - j (exactly
    # one value per preceding block is excluded from the stream).
    stream_index = starts - np.arange(num_blocks, dtype=np.int64)
    # Byte offset where gap value i starts is the previous value's end.
    byte_starts = np.concatenate([np.zeros(1, dtype=np.int64), ends])
    offsets = np.empty(num_blocks + 1, dtype=np.int64)
    offsets[:num_blocks] = byte_starts[stream_index]
    offsets[num_blocks] = len(stream)
    starts_out = np.empty(num_blocks + 1, dtype=np.int64)
    starts_out[:num_blocks] = starts
    starts_out[num_blocks] = num_edges
    return {
        "stream": stream,
        "offsets": offsets,
        "anchors": anchors,
        "starts": starts_out,
    }


class CompressedIndices:
    """A read-only, lazily-decoded stand-in for a flat CSR ``indices`` array.

    Supports the access patterns of the graph layer — integer, slice,
    index-array and boolean-mask ``__getitem__``, ``__array__`` for numpy
    interop, ``len`` — decoding only the blocks each access touches.  A
    one-run buffer caches the most recently decoded block range, so
    row-at-a-time loops (``neighbors`` in a Python loop, binary edge
    search) decode each block once rather than per access.

    The cache is a single ``(lo, hi, values)`` tuple published and read
    with one attribute access apiece, which CPython makes atomic: the
    thread execution backend runs many workers over one graph object, and
    a reader must never pair a fresh buffer with a stale range (or vice
    versa).  The decoded values are immutable, so a concurrent swap can at
    worst cost a reader its cache hit, never its correctness.
    """

    __slots__ = (
        "_stream",
        "_offsets",
        "_anchors",
        "_starts",
        "_length",
        "_cache",
    )

    def __init__(
        self,
        stream: np.ndarray,
        offsets: np.ndarray,
        anchors: np.ndarray,
        starts: np.ndarray,
    ) -> None:
        self._stream = stream
        self._offsets = offsets
        self._anchors = anchors
        self._starts = starts
        self._length = int(starts[-1])
        self._cache: Optional[Tuple[int, int, np.ndarray]] = None

    @classmethod
    def from_csr(
        cls, indptr: np.ndarray, indices: np.ndarray, *, block_values: int = BLOCK_VALUES
    ) -> "CompressedIndices":
        """Encode a flat CSR pair into a compressed view."""
        parts = encode_blocked(indptr, indices, block_values=block_values)
        return cls(parts["stream"], parts["offsets"], parts["anchors"], parts["starts"])

    # -- array-protocol surface ---------------------------------------- #
    dtype = np.dtype(np.int64)
    ndim = 1

    def __len__(self) -> int:
        return self._length

    @property
    def shape(self) -> Tuple[int]:
        return (self._length,)

    @property
    def size(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        """Stored (compressed) bytes: stream + anchors + skip pointers."""
        return int(
            self._stream.nbytes
            + self._offsets.nbytes
            + self._anchors.nbytes
            + self._starts.nbytes
        )

    @property
    def logical_nbytes(self) -> int:
        """Bytes the flat int64 array would occupy."""
        return 8 * self._length

    @property
    def num_blocks(self) -> int:
        return len(self._anchors)

    def arrays(self) -> Dict[str, np.ndarray]:
        """The four backing arrays (for packing into stores / snapshots)."""
        return {
            "stream": self._stream,
            "offsets": self._offsets,
            "anchors": self._anchors,
            "starts": self._starts,
        }

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        full = self.decode_range(0, self._length)
        return full if dtype is None else full.astype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ratio = self.nbytes / self.logical_nbytes if self._length else 1.0
        return (
            f"CompressedIndices(len={self._length}, blocks={self.num_blocks}, "
            f"bytes={self.nbytes}, ratio={ratio:.2f})"
        )

    # -- decoding ------------------------------------------------------ #
    def _decode_blocks(self, first_block: int, last_block: int) -> np.ndarray:
        """Decode blocks ``first_block .. last_block`` (inclusive) as values."""
        starts = self._starts
        lo_val = int(starts[first_block])
        hi_val = int(starts[last_block + 1])
        count = hi_val - lo_val
        gaps = decode_varints(
            self._stream[self._offsets[first_block] : self._offsets[last_block + 1]]
        )
        block_starts_rel = starts[first_block : last_block + 1] - lo_val
        values = np.empty(count, dtype=np.int64)
        gap_mask = np.ones(count, dtype=bool)
        gap_mask[block_starts_rel] = False
        values[gap_mask] = gaps
        anchors = self._anchors[first_block : last_block + 1]
        # Segmented cumsum: splice each block's anchor in as a delta from the
        # running total so one cumsum reconstructs every block.
        if len(anchors) == 1:
            values[0] = anchors[0]
        else:
            gap_totals = np.zeros(len(anchors), dtype=np.int64)
            np.add.at(
                gap_totals,
                np.searchsorted(block_starts_rel, np.flatnonzero(gap_mask), side="right") - 1,
                gaps,
            )
            last_values = anchors + gap_totals
            values[block_starts_rel[0]] = anchors[0]
            values[block_starts_rel[1:]] = anchors[1:] - last_values[:-1]
        return np.cumsum(values)

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Values ``lo .. hi`` (half-open) as a fresh int64 array."""
        if hi <= lo:
            return _EMPTY_I64
        lo = max(0, int(lo))
        hi = min(self._length, int(hi))
        cache = self._cache  # atomic snapshot: range and buffer travel together
        if cache is not None and cache[0] <= lo and hi <= cache[1]:
            return cache[2][lo - cache[0] : hi - cache[0]]
        first_block = int(np.searchsorted(self._starts, lo, side="right")) - 1
        last_block = int(np.searchsorted(self._starts, hi - 1, side="right")) - 1
        decoded = self._decode_blocks(first_block, last_block)
        decoded.flags.writeable = False
        base = int(self._starts[first_block])
        self._cache = (base, base + len(decoded), decoded)
        return decoded[lo - base : hi - base]

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Fancy-indexing equivalent: ``flat_indices[positions]``.

        Decodes each distinct block exactly once per call; positions may be
        unsorted and may repeat (the ragged frontier expansions of BFS and
        index construction are exactly this shape).
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return _EMPTY_I64
        lo = int(positions.min())
        hi = int(positions.max()) + 1
        cache = self._cache  # atomic snapshot: range and buffer travel together
        if cache is not None and cache[0] <= lo and hi <= cache[1]:
            return cache[2][positions - cache[0]]
        block_of = np.searchsorted(self._starts, positions, side="right") - 1
        unique_blocks = np.unique(block_of)
        # Dense access (BFS frontiers touch most blocks of a span): one
        # vectorised decode of the whole span beats thousands of per-run
        # decodes, and the waste is bounded by the 4x fill threshold.
        # Routing through decode_range caches the span, so the next level
        # of the same traversal is usually a pure cache hit.
        span_first = int(unique_blocks[0])
        span_last = int(unique_blocks[-1])
        if 4 * len(unique_blocks) >= span_last - span_first + 1:
            base = int(self._starts[span_first])
            decoded = self.decode_range(base, int(self._starts[span_last + 1]))
            return decoded[positions - base]
        # Decode each maximal run of consecutive blocks in one shot.
        run_breaks = np.flatnonzero(np.diff(unique_blocks) > 1) + 1
        run_starts = np.concatenate([[0], run_breaks])
        run_ends = np.concatenate([run_breaks, [len(unique_blocks)]])
        pieces = []
        piece_base = np.empty(len(unique_blocks), dtype=np.int64)
        piece_offset = 0
        for rs, re_ in zip(run_starts, run_ends):
            b0 = int(unique_blocks[rs])
            b1 = int(unique_blocks[re_ - 1])
            decoded = self._decode_blocks(b0, b1)
            run_block_starts = self._starts[b0 : b1 + 1]
            piece_base[rs:re_] = (
                piece_offset
                + run_block_starts[unique_blocks[rs:re_] - b0]
                - int(run_block_starts[0])
            )
            pieces.append(decoded)
            piece_offset += len(decoded)
        buffer = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        slot = np.searchsorted(unique_blocks, block_of)
        within = positions - self._starts[block_of]
        return buffer[piece_base[slot] + within]

    def __getitem__(self, key):
        if isinstance(key, slice):
            lo, hi, step = key.indices(self._length)
            if step > 0:
                values = self.decode_range(lo, hi)
                return values if step == 1 else values[::step]
            # Negative step: ``indices`` yields (start, stop) walking
            # downwards, so decode the ascending span they bracket and let
            # the stride pick from its end — numpy's own selection order.
            return self.decode_range(hi + 1, lo + 1)[::step]
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self._length
            if not 0 <= index < self._length:
                raise IndexError("index out of range")
            return self.decode_range(index, index + 1)[0]
        key = np.asarray(key)
        if key.dtype == bool:
            if len(key) != self._length:
                raise IndexError("boolean mask length mismatch")
            return self.gather(np.flatnonzero(key))
        return self.gather(key.astype(np.int64, copy=False))

    def copy(self) -> np.ndarray:
        """A fresh writable flat copy (ndarray ``.copy()`` compatibility)."""
        return self.materialize()

    def materialize(self) -> np.ndarray:
        """The whole flat int64 array (one full decode, no caching)."""
        cache = self._cache
        try:
            self._cache = None
            full = self.decode_range(0, self._length)
            out = np.array(full, dtype=np.int64)  # detach from the cache slot
        finally:
            self._cache = cache
        return out
