"""Summary statistics over graphs (Table 2 style reporting)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["GraphSummary", "summarize", "degree_histogram"]


@dataclass(frozen=True)
class GraphSummary:
    """The dataset properties the paper reports in Table 2."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_out_degree: int
    max_in_degree: int
    density: float

    def as_row(self) -> Dict[str, object]:
        """Render the summary as a flat dict for tabular reporting."""
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "d_avg": round(self.avg_degree, 1),
            "d_out_max": self.max_out_degree,
            "d_in_max": self.max_in_degree,
            "density": self.density,
        }


def summarize(graph: DiGraph) -> GraphSummary:
    """Compute the Table 2 style summary for ``graph``.

    ``avg_degree`` follows the paper's convention of average *out*-degree
    (``|E| / |V|``).
    """
    n = graph.num_vertices
    m = graph.num_edges
    out_degrees = graph.out_degrees()
    in_degrees = graph.in_degrees()
    return GraphSummary(
        num_vertices=n,
        num_edges=m,
        avg_degree=(m / n) if n else 0.0,
        max_out_degree=int(out_degrees.max()) if n else 0,
        max_in_degree=int(in_degrees.max()) if n else 0,
        density=(m / (n * (n - 1))) if n > 1 else 0.0,
    )


def degree_histogram(graph: DiGraph, *, direction: str = "out") -> Dict[int, int]:
    """Histogram mapping degree value -> number of vertices with that degree."""
    if direction not in ("out", "in"):
        raise ValueError("direction must be 'out' or 'in'")
    degrees = graph.out_degrees() if direction == "out" else graph.in_degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
