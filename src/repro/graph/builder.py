"""Incremental construction of :class:`~repro.graph.digraph.DiGraph`.

The builder accepts arbitrary hashable vertex ids, relabels them to dense
integers in insertion order, de-duplicates parallel edges (keeping the first
weight/label seen) and optionally drops self-loops, which carry no
information for simple-path enumeration.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder", "from_edges"]


class GraphBuilder:
    """Accumulates vertices and edges, then emits an immutable CSR graph."""

    def __init__(self, *, allow_self_loops: bool = False) -> None:
        self._allow_self_loops = allow_self_loops
        self._id_index: Dict[Hashable, int] = {}
        self._vertex_ids: List[Hashable] = []
        self._edges: Dict[Tuple[int, int], int] = {}
        self._sources: List[int] = []
        self._targets: List[int] = []
        self._weights: List[Optional[float]] = []
        self._labels: List[Optional[str]] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex_id: Hashable) -> int:
        """Register a vertex and return its internal id (idempotent)."""
        existing = self._id_index.get(vertex_id)
        if existing is not None:
            return existing
        internal = len(self._vertex_ids)
        self._id_index[vertex_id] = internal
        self._vertex_ids.append(vertex_id)
        return internal

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        *,
        weight: Optional[float] = None,
        label: Optional[str] = None,
    ) -> bool:
        """Add a directed edge; return ``False`` when it was a duplicate or dropped.

        Duplicate edges keep the attributes of the first occurrence, which is
        what the SNAP-style edge lists the paper uses do implicitly (they do
        not contain duplicates to begin with).
        """
        u = self.add_vertex(source)
        v = self.add_vertex(target)
        if u == v and not self._allow_self_loops:
            return False
        key = (u, v)
        if key in self._edges:
            return False
        self._edges[key] = len(self._sources)
        self._sources.append(u)
        self._targets.append(v)
        self._weights.append(weight)
        self._labels.append(label)
        return True

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> int:
        """Add many edges; return the number actually inserted."""
        inserted = 0
        for source, target in edges:
            if self.add_edge(source, target):
                inserted += 1
        return inserted

    @property
    def num_vertices(self) -> int:
        """Number of vertices registered so far."""
        return len(self._vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of unique edges added so far."""
        return len(self._sources)

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        """Return ``True`` when the edge has already been added."""
        u = self._id_index.get(source)
        v = self._id_index.get(target)
        if u is None or v is None:
            return False
        return (u, v) in self._edges

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #
    def build(self) -> DiGraph:
        """Freeze the accumulated edges into a :class:`DiGraph`."""
        n = len(self._vertex_ids)
        m = len(self._sources)
        sources = np.asarray(self._sources, dtype=np.int64)
        targets = np.asarray(self._targets, dtype=np.int64)

        out_indptr, out_indices, out_order = _csr_from_pairs(n, sources, targets)
        in_indptr, in_indices, _ = _csr_from_pairs(n, targets, sources)

        has_weights = any(w is not None for w in self._weights)
        has_labels = any(lbl is not None for lbl in self._labels)
        edge_weights = None
        edge_labels = None
        if has_weights:
            raw = np.asarray(
                [1.0 if w is None else float(w) for w in self._weights], dtype=np.float64
            )
            edge_weights = raw[out_order] if m else raw
        if has_labels:
            edge_labels = [self._labels[int(i)] for i in out_order] if m else []

        external_ids = list(self._vertex_ids)
        trivially_dense = all(
            isinstance(vid, (int, np.integer)) and int(vid) == i
            for i, vid in enumerate(external_ids)
        )
        return DiGraph(
            n,
            out_indptr,
            out_indices,
            in_indptr,
            in_indices,
            edge_weights=edge_weights,
            edge_labels=edge_labels,
            vertex_ids=None if trivially_dense else external_ids,
        )

    def build_reverse(self) -> DiGraph:
        """Build the reversed graph directly (used by a few baselines)."""
        return self.build().reverse()


def _csr_from_pairs(
    num_vertices: int, sources: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build CSR arrays from parallel source/target arrays.

    Returns ``(indptr, indices, order)`` where ``order`` maps each CSR slot
    back to the original edge position so attribute arrays can be permuted
    consistently.
    """
    if len(sources) != len(targets):
        raise GraphError("sources and targets must have the same length")
    if len(sources) == 0:
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        return indptr, empty, empty
    order = np.lexsort((targets, sources))
    sorted_sources = sources[order]
    sorted_targets = targets[order]
    counts = np.bincount(sorted_sources, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, sorted_targets.astype(np.int64), order


def from_edges(
    edges: Iterable[Tuple[Hashable, Hashable]], *, allow_self_loops: bool = False
) -> DiGraph:
    """Convenience helper: build a graph from an iterable of ``(u, v)`` pairs."""
    builder = GraphBuilder(allow_self_loops=allow_self_loops)
    builder.add_edges(edges)
    return builder.build()
