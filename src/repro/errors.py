"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
a single base class.  More specific subclasses are raised where the caller
can reasonably recover or report a precise message.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "QueryError",
    "InvalidQueryError",
    "QuerySpecError",
    "BackendError",
    "ConnectionLost",
    "ServiceOverloaded",
    "EnumerationTimeout",
    "ResultLimitReached",
    "DatasetError",
    "WorkloadError",
    "ConstraintError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Problems constructing or manipulating a graph."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex id is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge is not present in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class QueryError(ReproError):
    """Problems with a HcPE query."""


class InvalidQueryError(QueryError, ValueError):
    """The query parameters violate the problem statement (e.g. s == t, k < 2)."""


class QuerySpecError(QueryError, ValueError):
    """A declarative :class:`repro.api.QuerySpec` is ill-formed.

    Raised with a precise message naming the offending field (negative hop
    budget, identical endpoints, unknown engine name, mixed per-batch
    options, ...) so callers can surface it verbatim.
    """


class BackendError(ReproError, ValueError):
    """An execution backend cannot be selected or opened.

    Raised by :class:`repro.api.Database` for unknown backend names, targets
    that cannot be resolved (not a graph, snapshot, edge list or
    ``host:port`` URL) and local/remote mismatches.
    """


class ConnectionLost(ReproError, ConnectionError):
    """A query-service connection could not be established or died.

    Raised by :class:`repro.server.client.QueryClient` when dialling a
    server fails after every reconnect attempt, and by control requests
    whose connection vanished mid-flight.  Subclasses ``ConnectionError``
    so pre-existing ``except (ConnectionError, OSError)`` handlers keep
    working; carries the endpoint and the number of attempts made.
    """

    def __init__(self, host: str, port: int, attempts: int = 1, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"lost connection to {host}:{port} after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}{detail}"
        )
        self.host = host
        self.port = port
        self.attempts = attempts


class ServiceOverloaded(ReproError, RuntimeError):
    """A query service shed work because its pending budget is exhausted.

    Raised by :meth:`repro.server.service.QueryService.submit` when
    admitting a job would push the in-flight query count past
    ``max_pending_queries``, and by the remote backends when the server
    answered with an ``overloaded`` frame.  Carries ``retry_after`` — the
    server's own estimate, in seconds, of when capacity should free up —
    so callers can back off intelligently instead of hammering a saturated
    host.
    """

    def __init__(
        self,
        message: str = "query service overloaded",
        *,
        retry_after: float = 0.1,
        pending: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> None:
        detail = message
        if pending is not None and limit is not None:
            detail = f"{message} ({pending} queries pending, budget {limit})"
        super().__init__(detail)
        self.retry_after = float(retry_after)
        self.pending = pending
        self.limit = limit


class EnumerationTimeout(ReproError):
    """The cooperative deadline of an enumeration run expired.

    The exception carries the partial statistics gathered so far so the
    harness can still report throughput for timed-out queries, mirroring the
    paper's treatment of queries hitting the two-minute limit.
    """

    def __init__(self, message: str = "enumeration deadline expired", *, stats=None) -> None:
        super().__init__(message)
        self.stats = stats


class ResultLimitReached(ReproError):
    """Internal control-flow signal used to stop after the N-th result.

    Never escapes the public API: the enumerators catch it and return
    normally with ``truncated=True`` in the result.
    """


class DatasetError(ReproError):
    """A named dataset cannot be generated or loaded."""


class WorkloadError(ReproError):
    """A query workload cannot be generated with the requested properties."""


class ConstraintError(ReproError, ValueError):
    """A path constraint (predicate / accumulative / automaton) is ill-formed."""
