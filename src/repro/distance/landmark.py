"""Landmark-based distance oracle (offline global index, Section 7.5).

For a set of landmark vertices ``L`` the oracle stores, per landmark, the
forward distances ``d(l, v)`` and the backward distances ``d(v, l)`` for all
``v``.  Two classical consequences of the triangle inequality on directed
graphs then give query-time bounds without touching the graph:

* **upper bound** — ``d(s, t) <= d(s, l) + d(l, t)`` for every landmark;
* **lower bound** — ``d(s, t) >= d(l, t) - d(l, s)`` and
  ``d(s, t) >= d(s, l) - d(t, l)``.

The lower bound is what HcPE needs: when it already exceeds the hop
constraint ``k`` the query provably has no results, so the application can
skip the per-query index construction entirely.  When the upper bound is at
most ``k`` the query is guaranteed to have at least one result (the
concatenated shortest paths may repeat vertices, so this direction is only
used as a hint, never to skip enumeration).

Construction costs ``O(|L| * (|V| + |E|))`` — one forward and one backward
BFS per landmark — and is meant to run once per graph, offline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHABLE, bfs_distances

__all__ = ["LandmarkOracle", "select_landmarks"]

#: Internal sentinel for "unreachable" stored as a large finite value so the
#: numpy min/max arithmetic below stays branch-free.
_INF = np.int64(1 << 40)


def select_landmarks(graph: DiGraph, count: int, *, strategy: str = "degree") -> List[int]:
    """Pick ``count`` landmark vertices.

    ``"degree"`` picks the vertices with the highest total degree (the usual
    heuristic: hubs cover many shortest paths); ``"random"`` picks a
    reproducible random sample and exists mostly for comparison in tests.
    """
    if count < 1:
        raise GraphError("at least one landmark is required")
    count = min(count, graph.num_vertices)
    if strategy == "degree":
        degrees = graph.out_degrees() + graph.in_degrees()
        order = np.lexsort((np.arange(graph.num_vertices), -degrees))
        return [int(v) for v in order[:count]]
    if strategy == "random":
        rng = np.random.default_rng(count)
        return [int(v) for v in rng.choice(graph.num_vertices, size=count, replace=False)]
    raise GraphError(f"unknown landmark selection strategy {strategy!r}")


class LandmarkOracle:
    """Precomputed forward/backward landmark distances for one graph."""

    def __init__(self, graph: DiGraph, landmarks: Sequence[int]) -> None:
        if not landmarks:
            raise GraphError("LandmarkOracle requires at least one landmark")
        for landmark in landmarks:
            graph._check_vertex(landmark)
        self.graph = graph
        self.landmarks = [int(v) for v in landmarks]
        forward_rows = []
        backward_rows = []
        for landmark in self.landmarks:
            forward = bfs_distances(graph, landmark)
            backward = bfs_distances(graph, landmark, reverse=True)
            forward_rows.append(np.where(forward == UNREACHABLE, _INF, forward))
            backward_rows.append(np.where(backward == UNREACHABLE, _INF, backward))
        #: ``_forward[i][v]`` — distance from landmark i to v.
        self._forward = np.vstack(forward_rows)
        #: ``_backward[i][v]`` — distance from v to landmark i.
        self._backward = np.vstack(backward_rows)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        *,
        num_landmarks: int = 16,
        strategy: str = "degree",
        landmarks: Optional[Sequence[int]] = None,
    ) -> "LandmarkOracle":
        """Build an oracle, selecting landmarks unless they are given explicitly."""
        chosen = list(landmarks) if landmarks is not None else select_landmarks(
            graph, num_landmarks, strategy=strategy
        )
        return cls(graph, chosen)

    @property
    def num_landmarks(self) -> int:
        """Number of landmark vertices."""
        return len(self.landmarks)

    def estimated_bytes(self) -> int:
        """Memory footprint of the two distance matrices."""
        return int(self._forward.nbytes + self._backward.nbytes)

    # ------------------------------------------------------------------ #
    # bounds
    # ------------------------------------------------------------------ #
    def upper_bound(self, source: int, target: int) -> Optional[int]:
        """An upper bound on ``d(source, target)``, or ``None`` when unknown.

        ``min over landmarks of d(source, l) + d(l, target)``; the true
        distance can be smaller but never larger.  ``None`` means no landmark
        connects the two vertices, which says nothing about reachability.
        """
        self.graph._check_vertex(source)
        self.graph._check_vertex(target)
        if source == target:
            return 0
        totals = self._backward[:, source] + self._forward[:, target]
        best = int(totals.min())
        return None if best >= int(_INF) else best

    def lower_bound(self, source: int, target: int) -> int:
        """A lower bound on ``d(source, target)`` (0 when nothing better is known)."""
        self.graph._check_vertex(source)
        self.graph._check_vertex(target)
        if source == target:
            return 0
        forward_to_target = self._forward[:, target]
        forward_to_source = self._forward[:, source]
        backward_from_source = self._backward[:, source]
        backward_from_target = self._backward[:, target]
        # d(s,t) >= d(l,t) - d(l,s) whenever d(l,t) is finite.
        candidates = []
        finite = forward_to_target < _INF
        if finite.any():
            candidates.append((forward_to_target[finite] - forward_to_source[finite]).max())
        # d(s,t) >= d(s,l) - d(t,l) whenever d(s,l) is finite.
        finite = backward_from_source < _INF
        if finite.any():
            candidates.append((backward_from_source[finite] - backward_from_target[finite]).max())
        # If the target is unreachable from every landmark that reaches the
        # source, the bounds above may be negative; clamp at zero.
        if not candidates:
            return 0
        bound = int(max(candidates))
        if bound >= int(_INF) // 2:
            # The source reaches a landmark (or a landmark reaches the target)
            # from which the other endpoint is unreachable in the relevant
            # direction; that alone does not prove t is unreachable from s,
            # so fall back to the trivial bound.
            return 0
        return max(0, bound)

    def might_reach_within(self, source: int, target: int, k: int) -> bool:
        """Sound filter: ``False`` only when no path of length <= k can exist.

        Returning ``True`` does not guarantee a result — it only means the
        landmark bounds cannot rule one out.
        """
        return self.lower_bound(source, target) <= k

    def definitely_reaches_within(self, source: int, target: int, k: int) -> bool:
        """``True`` when a walk of length <= k certainly exists (upper bound <= k)."""
        upper = self.upper_bound(source, target)
        return upper is not None and upper <= k
