"""Offline distance oracles (the global-index direction of Section 7.5).

The paper's discussion section points out that on very large graphs the
per-query index construction — dominated by its two BFS traversals — becomes
the bottleneck, and suggests an *offline global index* that serves every
query as future work.  :class:`~repro.distance.landmark.LandmarkOracle` is a
light-weight instance of that idea: it precomputes forward and backward BFS
distances from a small set of landmark vertices and answers, without
touching the graph again,

* lower bounds on the s-t distance (triangle inequality on the landmarks);
* a sound ``might_reach_within(s, t, k)`` filter that rejects queries whose
  hop constraint provably cannot be met.

PathEnum itself is unchanged — the oracle sits in front of it and lets an
application skip index construction for hopeless queries.
"""

from repro.distance.landmark import LandmarkOracle, select_landmarks

__all__ = ["LandmarkOracle", "select_landmarks"]
