"""Figure 6: detailed pruning metrics of BC-DFS vs. IDX-DFS with k varied.

Reports the average number of edges accessed, invalid partial results and
results per query on the two representative graphs.  Expected shape (paper):
IDX-DFS accesses roughly two orders of magnitude fewer edges, while the
number of invalid partial results is similar for both — the evidence that
heavyweight pruning during enumeration buys little on top of the index.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.breakdown import detailed_metrics
from repro.bench.reporting import format_table

ALGORITHMS = ("BC-DFS", "IDX-DFS")


def _run_fig6():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        metrics = detailed_metrics(
            dataset(name), workload(name), ALGORITHMS, ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        for k, per_algorithm in metrics.items():
            for algorithm, values in per_algorithm.items():
                rows.append(
                    {
                        "dataset": name,
                        "k": k,
                        "algorithm": algorithm,
                        "#edges": values["edges"],
                        "#invalid": values["invalid"],
                        "#results": values["results"],
                    }
                )
    return rows


def test_fig6_detailed_metrics(benchmark):
    rows = run_once(benchmark, _run_fig6)
    persist(
        "fig6_detailed_metrics",
        format_table(rows, title="Figure 6: #edges accessed, #invalid partials, #results"),
    )
    # Shape check: at the smallest k (where neither algorithm can time out)
    # the index accesses no more edges than the raw-adjacency baseline.  At
    # larger k BC-DFS may hit the time limit and stop scanning early, which
    # is exactly the effect the paper describes for Figure 6.
    by_key = {(r["dataset"], r["k"], r["algorithm"]): r for r in rows}
    smallest_k = min(K_SWEEP)
    for name in REPRESENTATIVE_DATASETS:
        assert (
            by_key[(name, smallest_k, "IDX-DFS")]["#edges"]
            <= by_key[(name, smallest_k, "BC-DFS")]["#edges"]
        )
