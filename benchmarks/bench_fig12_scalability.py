"""Figure 12: scalability on the largest graph (the ``tm`` stand-in).

The paper's billion-edge Twitter graph is replaced by the largest synthetic
graph of the registry.  For k = 3..6 the execution time of every individual
technique (BFS, index construction, join-order optimization, DFS, join) and
the throughput of IDX-DFS / IDX-JOIN are reported.  Expected shape: index
construction (dominated by its BFS) is the fixed cost, and the enumeration
throughput stays high once the index is built.
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, persist, run_once, workload, dataset

from repro.bench.breakdown import technique_breakdown
from repro.bench.reporting import format_table

SCALABILITY_DATASET = "tm"
SCALABILITY_KS = (3, 4, 5, 6)


def _run_fig12():
    graph = dataset(SCALABILITY_DATASET)
    breakdown = technique_breakdown(
        graph,
        workload(SCALABILITY_DATASET, k=max(SCALABILITY_KS), count=3),
        ks=SCALABILITY_KS,
        settings=BENCH_SETTINGS,
    )
    rows = []
    for k, values in breakdown.items():
        rows.append({"dataset": SCALABILITY_DATASET, "k": k, **values})
    return rows


def test_fig12_scalability(benchmark):
    rows = run_once(benchmark, _run_fig12)
    persist(
        "fig12_scalability",
        format_table(rows, title="Figure 12: scalability on the largest graph (tm stand-in)"),
    )
    for row in rows:
        # BFS is part of index construction, never larger than it.
        assert row["bfs_ms"] <= row["index_construction_ms"] + 1e-6
        assert row["idx_dfs_throughput"] > 0.0
