"""Ablation: the light-weight index (Algorithm 3) vs. the full reducer (Algorithm 2).

DESIGN.md calls out the paper's central design choice: replace the full
reducer's relation construction with the distance-based light-weight index,
trading a small amount of pruning bookkeeping for a much cheaper build.
This ablation measures, on the representative graphs:

* the construction time of both structures;
* the number of edges each retains (their pruning power — Appendix B proves
  they are essentially identical);
* the end-to-end query time of IDX-DFS vs. the FullJoin baseline that
  enumerates over the reduced relations.
"""

from __future__ import annotations

import time

from _bench_common import BENCH_SETTINGS, REPRESENTATIVE_DATASETS, dataset, persist, run_once, workload

from repro.bench.reporting import format_table
from repro.bench.runner import run_workload
from repro.core.index import LightWeightIndex
from repro.core.relations import build_relations

ABLATION_K = 4


def _run_ablation():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        graph = dataset(name)
        queries = workload(name, k=ABLATION_K)

        index_seconds = 0.0
        reducer_seconds = 0.0
        index_edges = 0
        reducer_tuples = 0
        for query in queries:
            started = time.perf_counter()
            index = LightWeightIndex.build(graph, query)
            index_seconds += time.perf_counter() - started
            index_edges += index.num_index_edges

            started = time.perf_counter()
            relations = build_relations(graph, query)
            reducer_seconds += time.perf_counter() - started
            reducer_tuples += relations.total_tuples()

        idx_results = run_workload("IDX-DFS", graph, queries, settings=BENCH_SETTINGS)
        full_results = run_workload("FullJoin", graph, queries, settings=BENCH_SETTINGS)
        rows.append(
            {
                "dataset": name,
                "index_build_ms": 1e3 * index_seconds / len(queries),
                "full_reducer_ms": 1e3 * reducer_seconds / len(queries),
                "index_edges": index_edges / len(queries),
                "reducer_tuples": reducer_tuples / len(queries),
                "idx_dfs_query_ms": sum(r.query_millis for r in idx_results) / len(idx_results),
                "full_join_query_ms": sum(r.query_millis for r in full_results)
                / len(full_results),
            }
        )
    return rows


def test_ablation_index_vs_full_reducer(benchmark):
    rows = run_once(benchmark, _run_ablation)
    persist(
        "ablation_index_pruning",
        format_table(
            rows,
            title=f"Ablation: light-weight index vs. full reducer (k={ABLATION_K})",
        ),
    )
    for row in rows:
        # The two structures have essentially the same pruning power
        # (Appendix B): the reducer retains at most the index edges plus the
        # per-position duplicates and padding tuples.
        assert row["reducer_tuples"] >= row["index_edges"]
        # Construction cost stays in the same ballpark on the scaled graphs
        # (on the paper's full-size graphs the reducer's repeated relation
        # scans are clearly more expensive); end-to-end, enumerating on the
        # index is never slower than enumerating on the reduced relations.
        assert row["index_build_ms"] <= 2.0 * row["full_reducer_ms"]
        assert row["idx_dfs_query_ms"] <= row["full_join_query_ms"] * 1.5
