"""Distributed router benchmark: equivalence, shard scaling, hedged tails.

Boots a real fleet of ``repro serve`` shard processes plus a ``repro route``
front end holding no graph, then measures the three claims the router tier
makes:

* **equivalence** — a :class:`~repro.api.Database` opened on
  ``router://host:port`` must return payloads byte-identical to the
  ``inline`` backend for the same workload, including the interrupted
  variants (``limit=3`` result caps, ``deadline=0.0`` time-outs).  Every
  shard replica holds the full graph, so routing is pure placement and the
  merged stream must be indistinguishable from a local run;
* **scaling** — every shard host gets an injected per-query service delay
  (``repro serve --delay-ms``), which turns open-loop throughput into a
  controlled function of host count instead of a property of the benchmark
  machine.  Offered load is 2x the aggregate fleet capacity, so achieved
  throughput reads out capacity; it must grow >= 1.7x from one shard to
  two and >= 3x from one to four;
* **hedging** — one shard with a slow primary replica and a fast second
  replica.  With hedging on the router duplicates stragglers to the
  replica after a latency-percentile-derived delay, so client p99 must
  drop well below the hedging-off run against the identical fleet.

Scaling levels use a *target-balanced* workload sample (round-robin over
the per-shard hash buckets) so they measure router capacity rather than
the hash skew of one particular random workload; the equivalence section
uses the raw workload untouched.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_router.py``
(``--quick`` trims levels and durations for CI).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import re
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.api import Database
from repro.bench.metrics import latency_summary
from repro.server.client import QueryClient, open_loop_load
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import (
    consistent_hash,
    generate_query_set,
    poisson_arrival_times,
)

RESULTS_DIR = Path(__file__).parent / "results"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

DATASET = "ye"
K = 3
WORKLOAD_QUERIES = 200
SEED = 2021

SHARD_THREADS = 2
DELAY_MS = 60.0  # injected service time -> per-shard capacity = threads/delay
OVERLOAD = 2.0  # offered load as a multiple of aggregate fleet capacity
SHARD_LEVELS = (1, 2, 4, 8)
DURATION_SECONDS = 3.0
MIN_SPEEDUP_2 = 1.7
MIN_SPEEDUP_4 = 3.0

SLOW_DELAY_MS = 250.0
FAST_DELAY_MS = 5.0
HEDGE_RATE_QPS = 5.0
HEDGE_WARMUP = 12
HEDGE_QUERIES = 40
MAX_HEDGED_P99_RATIO = 0.7

EQUIV_QUERIES = 32


def boot_shard(shard_id: int, delay_ms: float) -> subprocess.Popen:
    """Start one ``repro serve`` shard host on a free port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", DATASET, "--port", "0",
            "--threads", str(SHARD_THREADS),
            "--shard-id", str(shard_id),
            "--delay-ms", str(delay_ms),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    match = re.search(r"serving on [\d.]+:(\d+)", banner)
    if not match:
        process.terminate()
        raise RuntimeError(f"shard {shard_id} failed to boot: {banner!r}")
    process.bench_port = int(match.group(1))  # type: ignore[attr-defined]
    return process


def boot_router(shard_args: Sequence[str], *, hedge: bool) -> subprocess.Popen:
    """Start ``repro route`` over the given ``HOST:PORT[,HOST:PORT...]`` shards."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    command = [sys.executable, "-m", "repro", "route", "--port", "0"]
    for entry in shard_args:
        command.extend(["--shard", entry])
    if not hedge:
        command.append("--no-hedge")
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    match = re.search(r"routing on [\d.]+:(\d+)", banner)
    if not match:
        process.terminate()
        raise RuntimeError(f"router failed to boot: {banner!r}")
    process.bench_port = int(match.group(1))  # type: ignore[attr-defined]
    return process


def stop(process: subprocess.Popen, what: str) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise
    assert process.returncode == 0, f"{what} exited with {process.returncode}"


def router_stats(port: int) -> Dict[str, object]:
    async def go():
        client = await QueryClient.connect("127.0.0.1", port)
        try:
            return await client.stats()
        finally:
            await client.close()

    return asyncio.run(go())


def check_equivalence(graph, router_port: int, triples) -> Dict[str, object]:
    """Router payloads must be byte-identical to the inline backend."""
    scenarios = {
        "full_paths": {"store_paths": True},
        "limit_3": {"store_paths": True, "limit": 3},
        "deadline_0": {"store_paths": True, "deadline": 0.0},
    }
    report: Dict[str, object] = {"queries": len(triples)}
    with Database(graph) as inline_db, Database(
        f"router://127.0.0.1:{router_port}"
    ) as router_db:
        for name, opts in scenarios.items():
            expected = inline_db.batch(triples, **opts).payload_bytes()
            actual = router_db.batch(triples, **opts).payload_bytes()
            assert actual == expected, f"router diverged from inline ({name})"
            report[name] = {"byte_identical": True, "payload_bytes": len(expected)}
            print(f"equivalence [{name}]: {len(triples)} queries byte-identical")
    return report


def balanced_sample(pool, num_shards: int, count: int) -> List[List[int]]:
    """``count`` triples drawn round-robin over the per-shard hash buckets."""
    buckets: List[List[List[int]]] = [[] for _ in range(num_shards)]
    for query in pool:
        shard = consistent_hash(query.target, num_shards)
        buckets[shard].append([query.source, query.target, query.k])
    assert all(buckets), "workload pool left a shard empty; enlarge the pool"
    triples: List[List[int]] = []
    index = 0
    while len(triples) < count:
        bucket = buckets[index % num_shards]
        triples.append(bucket[(index // num_shards) % len(bucket)])
        index += 1
    return triples


def bench_level(
    pool, shard_ports: Sequence[int], num_shards: int, duration: float
) -> Dict[str, object]:
    capacity = SHARD_THREADS / (DELAY_MS / 1e3) * num_shards
    rate = OVERLOAD * capacity
    count = int(rate * duration)
    triples = balanced_sample(pool, num_shards, count)
    arrivals = poisson_arrival_times(count, rate, seed=SEED + num_shards).tolist()
    router = boot_router(
        [f"127.0.0.1:{port}" for port in shard_ports[:num_shards]], hedge=False
    )
    try:
        report = asyncio.run(
            open_loop_load(
                triples,
                arrivals,
                port=router.bench_port,  # type: ignore[attr-defined]
                connections=min(32, 8 * num_shards),
            )
        )
    finally:
        stop(router, f"router({num_shards} shards)")
    assert report.errors == 0, f"{report.errors} queries failed at {num_shards} shards"
    summary = latency_summary(report.latencies_ms)
    print(
        f"shards={num_shards}: capacity {capacity:6.1f} q/s | offered "
        f"{rate:6.1f} q/s | achieved {report.achieved_qps:6.1f} q/s"
    )
    return {
        "shards": num_shards,
        "fleet_capacity_qps": round(capacity, 1),
        "offered_qps": round(rate, 1),
        "achieved_qps": round(report.achieved_qps, 1),
        "queries": report.completed,
        "errors": report.errors,
        "wall_seconds": round(report.wall_seconds, 3),
        "latency_ms": {key: round(value, 3) for key, value in summary.items()},
    }


def bench_hedging(
    pool, slow_port: int, fast_port: int, *, hedge: bool, queries: int, warmup: int
) -> Dict[str, object]:
    """One shard, slow primary + fast replica; report client p99."""
    label = "hedged" if hedge else "unhedged"
    triples = [[q.source, q.target, q.k] for q in pool]
    router = boot_router([f"127.0.0.1:{slow_port},127.0.0.1:{fast_port}"], hedge=hedge)
    try:
        port = router.bench_port  # type: ignore[attr-defined]
        # Warm connections and (when hedging) the latency estimator that
        # derives the hedge delay, so the measured window reflects steady
        # state on both configurations.
        warm = [triples[i % len(triples)] for i in range(warmup)]
        warm_arrivals = poisson_arrival_times(
            warmup, HEDGE_RATE_QPS, seed=SEED
        ).tolist()
        asyncio.run(open_loop_load(warm, warm_arrivals, port=port, connections=4))
        run = [triples[i % len(triples)] for i in range(queries)]
        arrivals = poisson_arrival_times(queries, HEDGE_RATE_QPS, seed=SEED + 1).tolist()
        report = asyncio.run(open_loop_load(run, arrivals, port=port, connections=4))
        stats = router_stats(port)
    finally:
        stop(router, f"router({label})")
    assert report.errors == 0, f"{report.errors} queries failed ({label})"
    summary = latency_summary(report.latencies_ms)
    print(
        f"{label:>8}: p50 {summary['p50_ms']:7.1f} ms | p99 "
        f"{summary['p99_ms']:7.1f} ms | hedges fired {stats['hedges_fired']}, "
        f"won {stats['hedge_wins']}"
    )
    return {
        "queries": report.completed,
        "errors": report.errors,
        "latency_ms": {key: round(value, 3) for key, value in summary.items()},
        "hedges_fired": stats["hedges_fired"],
        "hedge_wins": stats["hedge_wins"],
        "duplicates_dropped": stats["duplicates_dropped"],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: 1/2-shard levels, shorter windows, fewer hedge queries",
    )
    args = parser.parse_args(argv)

    levels = (1, 2) if args.quick else SHARD_LEVELS
    duration = 1.5 if args.quick else DURATION_SECONDS
    hedge_queries = 16 if args.quick else HEDGE_QUERIES
    hedge_warmup = 10 if args.quick else HEDGE_WARMUP

    graph = load_dataset(DATASET)
    pool = generate_query_set(graph, count=WORKLOAD_QUERIES, k=K, seed=SEED).queries
    print(
        f"dataset {DATASET}: |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"cpus={os.cpu_count()}, shard threads={SHARD_THREADS}, "
        f"delay {DELAY_MS:.0f} ms -> {SHARD_THREADS / (DELAY_MS / 1e3):.1f} q/s per shard"
    )

    # --- fleet boot (max level once; routers per level are cheap) ------------
    started = time.monotonic()
    shards = [boot_shard(i, DELAY_MS) for i in range(max(levels))]
    shard_ports = [s.bench_port for s in shards]  # type: ignore[attr-defined]
    print(f"booted {len(shards)} shard hosts in {time.monotonic() - started:.1f}s")

    try:
        # --- equivalence over a 2-shard fleet --------------------------------
        router = boot_router([f"127.0.0.1:{p}" for p in shard_ports[:2]], hedge=False)
        try:
            equiv_triples = [[q.source, q.target, q.k] for q in pool[:EQUIV_QUERIES]]
            equivalence = check_equivalence(
                graph, router.bench_port, equiv_triples  # type: ignore[attr-defined]
            )
        finally:
            stop(router, "router(equivalence)")

        # --- open-loop scaling ----------------------------------------------
        level_reports = [
            bench_level(pool, shard_ports, num_shards, duration)
            for num_shards in levels
        ]
    finally:
        for index, shard in enumerate(shards):
            stop(shard, f"shard {index}")

    base_qps = level_reports[0]["achieved_qps"]
    for report in level_reports:
        report["speedup_vs_1_shard"] = round(report["achieved_qps"] / base_qps, 2)
    by_shards = {report["shards"]: report for report in level_reports}
    speedup_2 = by_shards[2]["speedup_vs_1_shard"]
    assert speedup_2 >= MIN_SPEEDUP_2, (
        f"2-shard speedup {speedup_2} below the {MIN_SPEEDUP_2}x floor"
    )
    print(f"scaling: 2 shards -> {speedup_2}x (floor {MIN_SPEEDUP_2}x)")
    if 4 in by_shards:
        speedup_4 = by_shards[4]["speedup_vs_1_shard"]
        assert speedup_4 >= MIN_SPEEDUP_4, (
            f"4-shard speedup {speedup_4} below the {MIN_SPEEDUP_4}x floor"
        )
        print(f"scaling: 4 shards -> {speedup_4}x (floor {MIN_SPEEDUP_4}x)")

    # --- hedged requests: slow primary, fast replica -------------------------
    slow = boot_shard(0, SLOW_DELAY_MS)
    fast = boot_shard(0, FAST_DELAY_MS)
    try:
        hedge_args = dict(queries=hedge_queries, warmup=hedge_warmup)
        unhedged = bench_hedging(
            pool, slow.bench_port, fast.bench_port, hedge=False, **hedge_args
        )  # type: ignore[attr-defined]
        hedged = bench_hedging(
            pool, slow.bench_port, fast.bench_port, hedge=True, **hedge_args
        )  # type: ignore[attr-defined]
    finally:
        stop(slow, "slow shard")
        stop(fast, "fast shard")
    p99_ratio = hedged["latency_ms"]["p99_ms"] / unhedged["latency_ms"]["p99_ms"]
    assert hedged["hedges_fired"] > 0, "hedging run never fired a hedge"
    assert p99_ratio < MAX_HEDGED_P99_RATIO, (
        f"hedged p99 is {p99_ratio:.2f}x unhedged; "
        f"needed < {MAX_HEDGED_P99_RATIO}x"
    )
    print(f"hedging: p99 ratio {p99_ratio:.2f}x (ceiling {MAX_HEDGED_P99_RATIO}x)")

    payload = {
        "benchmark": "distributed_shard_router",
        "dataset": DATASET,
        "quick": args.quick,
        "workload": {
            "pool_queries": WORKLOAD_QUERIES,
            "k": K,
            "seed": SEED,
            "arrivals": "Poisson (seeded numpy Generator), open loop",
            "scaling_sample": "target-balanced round-robin over shard hash buckets",
            "latency": "client-observed completion from scheduled arrival, ms",
        },
        "router": {
            "transport": "tcp, length-prefixed JSON frames",
            "placement": "rendezvous hash by query target",
            "graph_held_by_router": False,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "equivalence": equivalence,
        "scaling": {
            "delay_ms": DELAY_MS,
            "shard_threads": SHARD_THREADS,
            "overload_factor": OVERLOAD,
            "duration_seconds": duration,
            "levels": level_reports,
            "floors": {"2_shards": MIN_SPEEDUP_2, "4_shards": MIN_SPEEDUP_4},
        },
        "hedging": {
            "slow_replica_delay_ms": SLOW_DELAY_MS,
            "fast_replica_delay_ms": FAST_DELAY_MS,
            "offered_qps": HEDGE_RATE_QPS,
            "unhedged": unhedged,
            "hedged": hedged,
            "hedged_p99_over_unhedged_p99": round(p99_ratio, 3),
            "ceiling": MAX_HEDGED_P99_RATIO,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_router.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
