"""Chaos benchmark: goodput and tail latency while the stack is on fire.

Three seeded fault scenarios, each against a real server:

* **worker kill** — a ``REPRO_FAULTS`` plan kills one pool worker
  mid-batch (``os._exit`` in the child, exactly what OOM looks like to the
  pool).  The batch must still complete with results byte-identical to an
  inline :class:`~repro.core.engine.QuerySession` run, and the recovery
  cost is reported as wall-time overhead against an undisturbed run.
* **sustained overload** — open-loop traffic offered at a multiple of a
  deliberately tiny admission budget.  Every arrival must settle
  (completed or shed — zero hung clients, zero transport errors), every
  *admitted* query must be byte-identical to inline, and goodput / p99 of
  the survivors are recorded alongside the shed count.
* **replica flap** — one shard, two replicas behind the router; the
  primary dies mid-run and later comes back.  The breaker trips, traffic
  rides the surviving replica, the half-open probe re-admits the revived
  host — with every job completing throughout.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_chaos.py [--quick]``
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import random

from repro.bench.metrics import latency_summary
from repro.core.engine import QuerySession
from repro.core.listener import RunConfig
from repro.server.client import run_queries, open_loop_load
from repro.testing import faults
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_target_centric_set, poisson_arrival_times

RESULTS_DIR = Path(__file__).parent / "results"
DATASET = "up"
K = 3
TARGETS = 6
SEED = 2021
QUICK = "--quick" in sys.argv

WORKLOAD_QUERIES = 40 if QUICK else 120
OVERLOAD_ARRIVALS = 24 if QUICK else 80
FLAP_JOBS = 6 if QUICK else 12


def _workload(graph):
    return list(
        generate_target_centric_set(
            graph, count=WORKLOAD_QUERIES, k=K, num_targets=TARGETS,
            seed=SEED, graph_name=DATASET,
        )
    )


def _inline_results(graph, queries):
    session = QuerySession(graph)
    return [session.run(q, RunConfig(store_paths=True)) for q in queries]


def boot_server(*extra_args, env_extra=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    if env_extra:
        env.update(env_extra)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", DATASET, "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    match = re.search(r"serving on [\d.]+:(\d+)", banner)
    if not match:
        process.terminate()
        raise RuntimeError(f"server failed to boot: {banner!r}")
    process.bench_port = int(match.group(1))  # type: ignore[attr-defined]
    return process


def shutdown(process) -> bool:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise
    return process.returncode == 0


def _assert_identical(expected, results) -> None:
    assert len(expected) == len(results)
    for exp, act in zip(expected, results):
        assert (act.source, act.target, act.k) == (exp.source, exp.target, exp.k)
        assert act.count == exp.count
        assert act.paths == exp.paths, "served paths diverged from inline"


# --------------------------------------------------------------------- #
# scenario 1: worker kill mid-batch
# --------------------------------------------------------------------- #
def scenario_worker_kill(graph, queries, expected) -> Dict[str, object]:
    triples = [[q.source, q.target, q.k] for q in queries]
    kill_position = len(queries) // 2

    # Baseline: the same batch on an undisturbed process pool.
    server = boot_server("--processes", "2")
    try:
        started = time.perf_counter()
        outcome = run_queries(triples, port=server.bench_port, store_paths=True)
        baseline_seconds = time.perf_counter() - started
        assert outcome.status == "done", outcome.info
        _assert_identical(expected, outcome.results)
    finally:
        assert shutdown(server), "baseline server exited non-zero"

    # The same batch with one worker killed at the marked position.
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as state_dir:
        plan = {
            "seed": SEED,
            "state_dir": state_dir,
            "faults": [
                {"site": "worker.task", "op": "kill", "position": kill_position}
            ],
        }
        server = boot_server(
            "--processes", "2",
            env_extra={faults.ENV_VAR: json.dumps(plan)},
        )
        try:
            started = time.perf_counter()
            outcome = run_queries(triples, port=server.bench_port, store_paths=True)
            faulted_seconds = time.perf_counter() - started
            assert outcome.status == "done", outcome.info
            _assert_identical(expected, outcome.results)
        finally:
            assert shutdown(server), "faulted server exited non-zero"

    overhead = faulted_seconds - baseline_seconds
    print(
        f"worker kill: {len(queries)} queries byte-identical after a worker "
        f"death at position {kill_position} "
        f"(baseline {baseline_seconds * 1e3:.0f} ms, with recovery "
        f"{faulted_seconds * 1e3:.0f} ms, overhead {overhead * 1e3:.0f} ms)"
    )
    return {
        "queries": len(queries),
        "kill_position": kill_position,
        "byte_identical": True,
        "baseline_ms": round(baseline_seconds * 1e3, 1),
        "with_recovery_ms": round(faulted_seconds * 1e3, 1),
        "recovery_overhead_ms": round(overhead * 1e3, 1),
    }


# --------------------------------------------------------------------- #
# scenario 2: sustained overload against a tiny admission budget
# --------------------------------------------------------------------- #
def scenario_overload(graph, queries, expected) -> Dict[str, object]:
    budget = 4
    pool = [[q.source, q.target, q.k] for q in queries]
    offered = [pool[i % len(pool)] for i in range(OVERLOAD_ARRIVALS)]
    index_of = [i % len(pool) for i in range(OVERLOAD_ARRIVALS)]
    # Two sustained bursts: all arrivals packed into two short windows.
    half = len(offered) // 2
    arrivals = [0.001 * i for i in range(half)]
    arrivals += [0.5 + 0.001 * i for i in range(len(offered) - half)]

    server = boot_server(
        "--threads", "1", "--delay-ms", "40",
        "--max-pending-queries", str(budget),
    )
    try:
        report = asyncio.run(
            open_loop_load(
                offered, arrivals, port=server.bench_port, connections=4,
                store_paths=True, overload_retries=1, rng=random.Random(SEED),
                keep_outcomes=True,
            )
        )
    finally:
        assert shutdown(server), "overloaded server exited non-zero"

    assert report.errors == 0, f"{report.errors} transport errors under overload"
    assert report.completed + report.shed == len(offered), "arrivals unaccounted"
    assert report.shed > 0, "overload scenario never shed load"
    # NOTE: --delay-ms wraps the algorithm in a fixed service delay; results
    # are unchanged, so admitted queries still compare against inline.
    for arrival_index, outcome in report.outcomes:
        _assert_identical([expected[index_of[arrival_index]]], outcome.results)
    summary = latency_summary(report.latencies_ms) if report.latencies_ms else {}
    print(
        f"overload: {len(offered)} offered vs budget {budget} -> "
        f"{report.completed} admitted (byte-identical), {report.shed} shed, "
        f"{report.retried} retries, goodput {report.achieved_qps:.1f} q/s, "
        f"p99 {summary.get('p99_ms', float('nan')):.0f} ms"
    )
    return {
        "offered": len(offered),
        "admission_budget": budget,
        "completed": report.completed,
        "shed": report.shed,
        "retried": report.retried,
        "errors": report.errors,
        "admitted_byte_identical": True,
        "goodput_qps": round(report.achieved_qps, 1),
        "latency_ms": {key: round(value, 3) for key, value in summary.items()},
    }


# --------------------------------------------------------------------- #
# scenario 3: replica flap behind the router
# --------------------------------------------------------------------- #
def scenario_replica_flap(graph, queries, expected) -> Dict[str, object]:
    from repro.server.client import ReconnectPolicy
    from repro.server.router import ShardMap, ShardRouter
    from repro.server.server import QueryServer
    from repro.server.service import QueryService

    triples = [[q.source, q.target, q.k] for q in queries]

    async def run() -> Dict[str, object]:
        primary_service = QueryService(graph, threads=2, shard_id=0)
        primary_server = QueryServer(primary_service, port=0)
        await primary_server.start()
        primary_port = primary_server.port
        standby_service = QueryService(graph, threads=2, shard_id=0)
        standby_server = QueryServer(standby_service, port=0)
        await standby_server.start()
        router = ShardRouter(
            ShardMap.from_entries(
                [f"127.0.0.1:{primary_port},127.0.0.1:{standby_server.port}"]
            ),
            hedge=False,
            policy=ReconnectPolicy(attempts=1),
            breaker_threshold=2,
            breaker_cooldown=0.4,
        )
        revived_service = revived_server = None
        job_ms: List[float] = []
        try:
            for index in range(FLAP_JOBS):
                if index == 2:  # flap down: primary dies mid-run
                    await primary_server.close()
                    await primary_service.close()
                if index == FLAP_JOBS - 2:  # flap up: primary returns
                    revived_service = QueryService(graph, threads=2, shard_id=0)
                    revived_server = QueryServer(revived_service, port=primary_port)
                    await revived_server.start()
                    await asyncio.sleep(0.5)  # past the breaker cooldown
                started = time.perf_counter()
                job = await router.submit(list(triples), {"store_paths": True})
                results = {}
                async for frame in job.frames():
                    if frame["type"] == "result":
                        results[frame["position"]] = frame
                    elif frame["type"] == "error":
                        raise AssertionError(f"job {index} failed: {frame}")
                job_ms.append((time.perf_counter() - started) * 1e3)
                assert sorted(results) == list(range(len(triples)))
                for position, exp in enumerate(expected):
                    frame = results[position]
                    assert frame["count"] == exp.count
                    paths = None if exp.paths is None else [list(p) for p in exp.paths]
                    assert frame.get("paths") == paths
            counters = router.counters
            return {
                "jobs": FLAP_JOBS,
                "queries_per_job": len(triples),
                "byte_identical": True,
                "failovers": counters.failovers,
                "breaker_trips": counters.breaker_trips,
                "breaker_skips": counters.breaker_skips,
                "job_ms": [round(ms, 1) for ms in job_ms],
                "p99_job_ms": round(
                    latency_summary(job_ms).get("p99_ms", float("nan")), 1
                ),
            }
        finally:
            await router.close()
            await standby_server.close()
            await standby_service.close()
            if revived_server is not None:
                await revived_server.close()
                await revived_service.close()

    payload = asyncio.run(run())
    assert payload["breaker_trips"] >= 1, "the flap never tripped the breaker"
    print(
        f"replica flap: {payload['jobs']} jobs all complete through the flap "
        f"({payload['failovers']} failovers, {payload['breaker_trips']} trip, "
        f"{payload['breaker_skips']} breaker skips, "
        f"p99 job {payload['p99_job_ms']} ms)"
    )
    return payload


def main() -> int:
    graph = load_dataset(DATASET)
    queries = _workload(graph)
    expected = _inline_results(graph, queries)
    print(
        f"dataset {DATASET}: |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"{len(queries)} queries, quick={QUICK}"
    )

    results = {
        "worker_kill": scenario_worker_kill(graph, queries, expected),
        "overload": scenario_overload(graph, queries, expected),
        "replica_flap": scenario_replica_flap(graph, queries, expected),
    }

    payload = {
        "benchmark": "chaos_fault_injection",
        "dataset": DATASET,
        "quick": QUICK,
        "workload": {
            "queries": len(queries),
            "k": K,
            "num_targets": TARGETS,
            "seed": SEED,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "scenarios": results,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_chaos.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
