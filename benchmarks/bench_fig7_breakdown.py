"""Figure 7: query-time breakdown (preprocessing vs. enumeration) with k varied.

Expected shape (paper): preprocessing (index construction / BFS) dominates
for small k and short queries, while enumeration takes over as k grows and
result counts explode; IDX-DFS is faster than BC-DFS on both components.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.breakdown import phase_breakdown
from repro.bench.reporting import format_table

ALGORITHMS = ("BC-DFS", "IDX-DFS")


def _run_fig7():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        breakdown = phase_breakdown(
            dataset(name), workload(name), ALGORITHMS, ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        for k, per_algorithm in breakdown.items():
            for algorithm, timings in per_algorithm.items():
                rows.append(
                    {
                        "dataset": name,
                        "k": k,
                        "algorithm": algorithm,
                        "preprocessing_ms": timings["preprocessing_ms"],
                        "enumeration_ms": timings["enumeration_ms"],
                    }
                )
    return rows


def test_fig7_query_time_breakdown(benchmark):
    rows = run_once(benchmark, _run_fig7)
    persist(
        "fig7_breakdown",
        format_table(rows, title="Figure 7: preprocessing vs. enumeration time (ms)"),
    )
    assert len(rows) == len(REPRESENTATIVE_DATASETS) * len(K_SWEEP) * len(ALGORITHMS)
    # Enumeration grows with k on the hard graph for IDX-DFS.
    idx_ep = {r["k"]: r for r in rows if r["dataset"] == "ep" and r["algorithm"] == "IDX-DFS"}
    assert idx_ep[max(K_SWEEP)]["enumeration_ms"] >= idx_ep[min(K_SWEEP)]["enumeration_ms"]
