"""Table 4: query-time distribution of BC-DFS vs. IDX-DFS with k varied.

The paper buckets queries into "< 60 s" and "> 120 s" under a 120 s limit;
this harness keeps the same 0.5x / 1.0x proportions of its scaled-down time
limit.  Expected shape: the fraction of fast queries shrinks with k much
more quickly for BC-DFS than for IDX-DFS, and IDX-DFS times out on far fewer
queries.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.breakdown import query_time_distribution
from repro.bench.reporting import format_table

ALGORITHMS = ("BC-DFS", "IDX-DFS")


def _run_table4():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        distribution = query_time_distribution(
            dataset(name), workload(name), ALGORITHMS, ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        for k, per_algorithm in distribution.items():
            for algorithm, buckets in per_algorithm.items():
                rows.append(
                    {
                        "dataset": name,
                        "k": k,
                        "algorithm": algorithm,
                        "fast_fraction": buckets["fast"],
                        "timeout_fraction": buckets["slow"],
                    }
                )
    return rows


def test_table4_query_time_distribution(benchmark):
    rows = run_once(benchmark, _run_table4)
    persist(
        "table4_distribution",
        format_table(rows, title="Table 4: query-time distribution (fraction fast / timed out)"),
    )
    # Shape check: IDX-DFS never times out on more queries than BC-DFS.
    by_key = {(r["dataset"], r["k"], r["algorithm"]): r for r in rows}
    for name in REPRESENTATIVE_DATASETS:
        for k in K_SWEEP:
            assert (
                by_key[(name, k, "IDX-DFS")]["timeout_fraction"]
                <= by_key[(name, k, "BC-DFS")]["timeout_fraction"]
            )
