"""Figure 18: cardinality-estimation accuracy with k varied.

Compares the mean actual result count against the full-fledged estimate
(the optimizer's walk count) and the preliminary estimate (Eq. 5).
Expected shape (paper): the full-fledged estimator tracks the actual count
closely for small k and over-estimates increasingly as k grows, because
walks outnumber paths more and more.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.cardinality import estimation_accuracy
from repro.bench.reporting import format_table


def _run_fig18():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        accuracy = estimation_accuracy(
            dataset(name), workload(name), ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        for k, row in accuracy.items():
            rows.append({"dataset": name, **row.as_row(),
                         "estimate/actual": row.full_fledged_ratio})
    return rows


def test_fig18_cardinality_estimation(benchmark):
    rows = run_once(benchmark, _run_fig18)
    persist(
        "fig18_cardinality",
        format_table(rows, title="Figure 18: cardinality estimation accuracy"),
    )
    # The walk-count estimate never under-estimates the (possibly truncated)
    # actual count at the smallest k, where nothing times out.
    smallest = min(K_SWEEP)
    for row in rows:
        if row["k"] == smallest:
            assert row["full_fledged"] >= row["#results"] - 1e-9
