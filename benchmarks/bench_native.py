"""Native engine benchmark: vectorised/compiled enumeration vs the kernels.

Two claims are checked, then measured:

1. **Byte-identical results.**  Every workload is evaluated three ways —
   recursive reference engines, iterative array kernels, and the native
   engine — and the per-query path list (order included) plus every work
   counter (edges accessed, partials generated/rejected, results emitted)
   must be identical across all three.
2. **>= 3x enumeration speedup.**  On enumeration-heavy workloads (dense
   random digraphs and cliques where a single query yields 10^4..10^6
   paths), the native engine must run the enumeration phase at least three
   times faster than the iterative kernels.

The native engine has two tiers: a pure-NumPy subtree-vectorised tier
(always available) and a Numba-compiled tier (picked up automatically when
``numba`` is importable).  This benchmark measures whichever tier
``engine="native"`` resolves to on the current machine and records the
tier in the result file.

``--quick`` is the CI smoke mode: a scaled-down tracked workload, the full
equivalence sweep, and a regression gate — divergence, or an enumeration
speedup more than 20 % below the committed baseline
(``results/BENCH_native.json``), fails the run.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_native.py [--quick]``
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.engine import IdxDfs, IdxJoin, PathEnum, QuerySession
from repro.core.listener import RunConfig
from repro.core.native import jit_ready, warmup
from repro.core.query import Query
from repro.core.result import Phase
from repro.graph.generators import complete_graph, erdos_renyi

RESULTS_DIR = Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_native.json"

#: Repetitions per (workload, engine) measurement; the minimum is reported.
#: The native/kernel gap is measured on a noisy shared machine, so each rep
#: collects garbage first and the best of N carries the claim.
REPEATS = 5

#: The committed headline claim: the native engine at least this much
#: faster than the iterative kernels on the tracked workloads.
REQUIRED_SPEEDUP = 3.0

#: Quick mode tolerates this much regression against the committed baseline
#: before failing the build.
QUICK_REGRESSION_TOLERANCE = 0.8

#: Work counters that must match bit-for-bit across engines.
COUNTERS = (
    "edges_accessed",
    "partial_results_generated",
    "invalid_partial_results",
    "results_emitted",
)


def _graph(spec: Dict) -> object:
    kind = spec["kind"]
    if kind == "erdos_renyi":
        return erdos_renyi(spec["n"], spec["avg_out_degree"], seed=spec["seed"])
    if kind == "complete":
        return complete_graph(spec["n"])
    raise ValueError(f"unknown graph kind {kind!r}")


#: Enumeration-heavy single queries, larger than the kernel benchmark's
#: rows: the native engine amortises per-path work across whole subtrees,
#: so its advantage (and the timing stability) grows with result count.
WORKLOADS = [
    {
        "name": "clique18-k6",
        "graph": {"kind": "complete", "n": 18},
        "query": (0, 17, 6),
        "tracked": True,
    },
    {
        "name": "er1000-deg30-k5",
        "graph": {"kind": "erdos_renyi", "n": 1000, "avg_out_degree": 30.0, "seed": 5},
        "query": (0, 1, 5),
        "tracked": True,
    },
    {
        "name": "er400-deg25-k6",
        "graph": {"kind": "erdos_renyi", "n": 400, "avg_out_degree": 25.0, "seed": 9},
        "query": (0, 1, 6),
        "tracked": True,
    },
    {
        "name": "clique12-k8",
        "graph": {"kind": "complete", "n": 12},
        "query": (0, 11, 8),
        "tracked": True,
    },
]

#: Scaled-down tracked workload for the CI smoke gate.
QUICK_WORKLOAD = {
    "name": "quick-clique14-k6",
    "graph": {"kind": "complete", "n": 14},
    "query": (0, 13, 6),
    "tracked": True,
}


def _enum_seconds(result) -> float:
    return result.stats.phase(Phase.ENUMERATION) + result.stats.phase(Phase.JOIN)


def measure_workload(spec: Dict, repeats: int = REPEATS) -> Dict:
    """Measure native vs kernel for the DFS plan on one workload."""
    graph = _graph(spec["graph"])
    s, t, k = spec["query"]
    query = Query(s, t, k)
    algorithm = IdxDfs()
    timings: Dict[str, Dict[str, float]] = {}
    counts = {}
    for engine in ("kernel", "native"):
        config = RunConfig(store_paths=True, engine=engine)
        best_total = best_enum = float("inf")
        for _ in range(repeats):
            # Collect leftovers before the timed region so ambient garbage
            # from earlier measurements is not charged to whichever engine
            # happens to allocate next.
            gc.collect()
            started = time.perf_counter()
            result = algorithm.run(graph, query, config)
            total = time.perf_counter() - started
            best_total = min(best_total, total)
            best_enum = min(best_enum, _enum_seconds(result))
            counts[engine] = result.count
        timings[engine] = {"total": best_total, "enum": best_enum}
    assert counts["native"] == counts["kernel"]
    return {
        "workload": spec["name"],
        "graph": spec["graph"],
        "query": {"source": s, "target": t, "k": k},
        "paths": counts["native"],
        "tracked": bool(spec["tracked"]),
        "kernel_enum_ms": round(timings["kernel"]["enum"] * 1e3, 3),
        "native_enum_ms": round(timings["native"]["enum"] * 1e3, 3),
        "kernel_total_ms": round(timings["kernel"]["total"] * 1e3, 3),
        "native_total_ms": round(timings["native"]["total"] * 1e3, 3),
        "enum_speedup": round(
            timings["kernel"]["enum"] / max(timings["native"]["enum"], 1e-9), 3
        ),
        "total_speedup": round(
            timings["kernel"]["total"] / max(timings["native"]["total"], 1e-9), 3
        ),
    }


# --------------------------------------------------------------------- #
# equivalence across engines
# --------------------------------------------------------------------- #
def _equivalence_workload() -> tuple:
    graph = erdos_renyi(90, 10.0, seed=7)
    rng = np.random.default_rng(2021)
    queries = []
    while len(queries) < 14:
        s, t = (int(v) for v in rng.choice(graph.num_vertices, size=2, replace=False))
        queries.append(Query(s, t, int(rng.integers(3, 7))))
    return graph, queries


def check_equivalence() -> Dict[str, object]:
    """Evaluate one workload through every engine; paths and counters must match."""
    graph, queries = _equivalence_workload()

    def run_all(engine: str, algorithm) -> List:
        config = RunConfig(store_paths=True, engine=engine)
        session = QuerySession(graph, algorithm=algorithm)
        return [session.run(q, config) for q in queries]

    divergent: List[str] = []
    total_paths = 0
    for plan_name, make in (("path-enum", PathEnum), ("dfs", IdxDfs), ("join", IdxJoin)):
        reference = run_all("recursive", make())
        total_paths = sum(r.count for r in reference)
        for engine in ("kernel", "native"):
            got = run_all(engine, make())
            for ref, res in zip(reference, got):
                if (ref.count, ref.paths) != (res.count, res.paths):
                    divergent.append(f"{plan_name}/{engine}: paths")
                    break
                if any(
                    getattr(ref.stats, c) != getattr(res.stats, c) for c in COUNTERS
                ):
                    divergent.append(f"{plan_name}/{engine}: counters")
                    break
    return {
        "queries": len(queries),
        "total_paths": total_paths,
        "plans": ["path-enum", "dfs", "join"],
        "engines": ["recursive", "kernel", "native"],
        "counters": list(COUNTERS),
        "byte_identical": not divergent,
        "divergent": divergent,
    }


def _print_rows(rows: List[Dict]) -> None:
    header = f"{'workload':<18} {'paths':>8} {'kernel':>10} {'native':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['workload']:<18} {row['paths']:>8} "
            f"{row['kernel_enum_ms']:>8.1f}ms {row['native_enum_ms']:>8.1f}ms "
            f"{row['enum_speedup']:>7.2f}x"
        )


def _baseline_quick_speedup() -> Optional[float]:
    if not RESULT_FILE.exists():
        return None
    try:
        committed = json.loads(RESULT_FILE.read_text())
        return float(committed["quick"]["row"]["enum_speedup"])
    except (KeyError, ValueError, TypeError):
        return None


def run_quick() -> int:
    print("equivalence sweep (recursive / kernel / native, 3 plans) ...")
    equivalence = check_equivalence()
    if not equivalence["byte_identical"]:
        print(f"FAIL: engines diverged from the recursive reference: "
              f"{equivalence['divergent']}")
        return 1
    print(f"byte-identical across {equivalence['engines']} "
          f"({equivalence['queries']} queries, {equivalence['total_paths']} paths)")

    row = measure_workload(QUICK_WORKLOAD, repeats=7)
    _print_rows([row])
    floor = 1.0
    baseline = _baseline_quick_speedup()
    if baseline is not None:
        floor = max(floor, baseline * QUICK_REGRESSION_TOLERANCE)
    if row["enum_speedup"] < floor:
        print(f"FAIL: native speedup {row['enum_speedup']:.2f}x below the "
              f"regression floor {floor:.2f}x")
        return 1
    print("native speedup within the regression budget")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: equivalence + regression gate, no result file",
    )
    args = parser.parse_args()
    compiled = warmup()  # compile/caches the JIT tier once, outside timing
    print(f"native tier: {'numba-compiled' if compiled else 'numpy-vectorised'}")
    if args.quick:
        return run_quick()

    print("equivalence sweep (recursive / kernel / native, 3 plans) ...")
    equivalence = check_equivalence()
    assert equivalence["byte_identical"], equivalence
    print(f"byte-identical across {equivalence['engines']} "
          f"({equivalence['queries']} queries, {equivalence['total_paths']} paths)")

    rows = [measure_workload(spec) for spec in WORKLOADS]
    _print_rows(rows)

    tracked = [row for row in rows if row["tracked"]]
    min_tracked = min(row["enum_speedup"] for row in tracked)
    if min_tracked < REQUIRED_SPEEDUP:
        print(f"WARNING: minimum tracked speedup {min_tracked:.2f}x "
              f"is below the {REQUIRED_SPEEDUP:.1f}x claim")

    quick_row = measure_workload(QUICK_WORKLOAD, repeats=7)

    payload = {
        "benchmark": "native_enumeration_engine",
        "claim": f">= {REQUIRED_SPEEDUP:.0f}x enumeration speedup over the "
                 "iterative kernels on tracked enumeration-heavy workloads, "
                 "byte-identical paths, order and counters",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "native_tier": "numba-compiled" if jit_ready() else "numpy-vectorised",
        },
        "settings": {
            "repeats": REPEATS,
            "store_paths": True,
            "timing": "best-of-N enumeration phase (index build excluded), "
                      "gc.collect() before each rep; total includes the "
                      "identical index build",
        },
        "equivalence": equivalence,
        "workloads": rows,
        "summary": {
            "min_tracked_enum_speedup": min_tracked,
            "enum_speedups": [r["enum_speedup"] for r in rows],
            "meets_claim": min_tracked >= REQUIRED_SPEEDUP,
        },
        "quick": {
            "workload": QUICK_WORKLOAD["name"],
            "regression_tolerance": QUICK_REGRESSION_TOLERANCE,
            "row": quick_row,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULT_FILE}")
    print(f"minimum tracked enumeration speedup: {min_tracked:.2f}x "
          f"(claim: >= {REQUIRED_SPEEDUP:.0f}x)")
    return 0 if min_tracked >= REQUIRED_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
