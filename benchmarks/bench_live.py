"""Live-update benchmark: read latency under writes, repair vs. recompute.

Three measurements against the live-update subsystem:

* **mixed open-loop traffic** — the same open-loop read workload is driven
  twice against a real server: once read-only, once with a concurrent
  writer replaying ``update`` frames (remove + re-insert of sampled edges)
  at ~10 % of the read rate.  Every read must settle (zero stalled reads,
  zero transport errors) and the mixed p99 must stay within 2x the
  read-only p99 — updates never stall the worker pool.
* **repair vs. recompute** — incremental reverse-BFS distance repair after
  a small edge batch, timed against the full bounded BFS it replaces, on
  the same targets the read workload tracks.  The ratio must come in
  below 1.
* **payload equivalence** — enumeration payloads on the overlay-merged,
  compacted and epoch-republished graphs must be byte-identical to a
  from-scratch rebuild of the post-update graph.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_live.py [--quick]``
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import random
import re
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Database, Q
from repro.bench.metrics import latency_summary
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import bfs_distances_bounded
from repro.live import DeltaOverlay, LiveGraph, repair_reverse_distances
from repro.server.client import QueryClient, open_loop_load
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_target_centric_set, poisson_arrival_times

RESULTS_DIR = Path(__file__).parent / "results"
DATASET = "ye"
K = 3
TARGETS = 6
SEED = 2021
QUICK = "--quick" in sys.argv

READ_ARRIVALS = 24 if QUICK else 80
READ_RATE_QPS = 25.0 if QUICK else 40.0
WRITE_FRACTION = 0.10
REPAIR_BATCH = 8
REPAIR_REPS = 3 if QUICK else 5


def _workload(graph):
    return list(
        generate_target_centric_set(
            graph, count=READ_ARRIVALS, k=K, num_targets=TARGETS,
            seed=SEED, graph_name=DATASET,
        )
    )


def _sample_edges(graph, count, seed) -> List[List[int]]:
    rng = random.Random(seed)
    sources = graph.edge_sources()
    targets = graph.out_csr()[1]
    picks = rng.sample(range(graph.num_edges), min(count, graph.num_edges))
    return [[int(sources[i]), int(targets[i])] for i in picks]


def boot_server(*extra_args, env_extra=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    if env_extra:
        env.update(env_extra)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", DATASET, "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    match = re.search(r"serving on [\d.]+:(\d+)", banner)
    if not match:
        process.terminate()
        raise RuntimeError(f"server failed to boot: {banner!r}")
    process.bench_port = int(match.group(1))  # type: ignore[attr-defined]
    return process


def shutdown(process) -> bool:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise
    return process.returncode == 0


# --------------------------------------------------------------------- #
# scenario 1: open-loop reads, with and without a 10%-write mix
# --------------------------------------------------------------------- #
async def _update_writer(port, edges, interval) -> Dict[str, object]:
    """Replay remove + re-insert frames for each edge, evenly spaced."""
    client = await QueryClient.connect(port=port)
    applied = 0
    last: Dict[str, object] = {}
    try:
        async with client:
            for edge in edges:
                last = await client.update(remove=[edge])
                await asyncio.sleep(interval)
                last = await client.update(add=[edge])
                applied += 2
                await asyncio.sleep(interval)
    finally:
        pass
    return {"frames": applied, "final": last}


def scenario_mixed_traffic(graph, queries) -> Dict[str, object]:
    triples = [[q.source, q.target, q.k] for q in queries]
    arrivals = poisson_arrival_times(len(triples), READ_RATE_QPS, seed=SEED)
    window = max(arrivals)
    num_updates = max(1, round(WRITE_FRACTION * len(triples) / 2))
    edges = _sample_edges(graph, num_updates, SEED)
    interval = window / (2 * len(edges) + 1)

    def drive(with_writes: bool):
        async def run():
            load = open_loop_load(
                triples, arrivals, port=server.bench_port, connections=4,
                store_paths=True, rng=random.Random(SEED), keep_outcomes=True,
            )
            if not with_writes:
                return await load, None
            report, writer = await asyncio.gather(
                load, _update_writer(server.bench_port, edges, interval)
            )
            return report, writer

        server = boot_server("--threads", "2")
        try:
            return asyncio.run(run())
        finally:
            assert shutdown(server), "server exited non-zero"

    read_report, _ = drive(with_writes=False)
    mixed_report, writer = drive(with_writes=True)

    for label, report in (("read-only", read_report), ("mixed", mixed_report)):
        assert report.errors == 0, f"{label}: transport errors"
        assert report.shed == 0, f"{label}: reads shed"
        assert report.completed == len(triples), f"{label}: stalled reads"

    # Reads against the mutating server stay correct: the writer ends every
    # edge where it started, and reads pin the epoch they started on, so
    # every outcome matches one of the (finitely many) published graphs.
    read_p99 = latency_summary(read_report.latencies_ms)["p99_ms"]
    mixed_p99 = latency_summary(mixed_report.latencies_ms)["p99_ms"]
    ratio = mixed_p99 / read_p99
    assert ratio <= 2.0, (
        f"p99 under 10%-write mix {mixed_p99:.1f} ms exceeds 2x the "
        f"read-only p99 {read_p99:.1f} ms"
    )
    print(
        f"mixed traffic: {len(triples)} reads + {writer['frames']} update "
        f"frames, zero stalled reads; p99 read-only {read_p99:.1f} ms, "
        f"mixed {mixed_p99:.1f} ms (ratio {ratio:.2f} <= 2.0), final epoch "
        f"{writer['final'].get('epoch')}"
    )
    return {
        "reads": len(triples),
        "read_rate_qps": READ_RATE_QPS,
        "update_frames": writer["frames"],
        "write_fraction": WRITE_FRACTION,
        "stalled_reads": 0,
        "errors": 0,
        "final_epoch": writer["final"].get("epoch"),
        "read_only_latency_ms": {
            key: round(value, 3)
            for key, value in latency_summary(read_report.latencies_ms).items()
        },
        "mixed_latency_ms": {
            key: round(value, 3)
            for key, value in latency_summary(mixed_report.latencies_ms).items()
        },
        "p99_ratio": round(ratio, 3),
    }


# --------------------------------------------------------------------- #
# scenario 2: incremental repair vs. full recompute
# --------------------------------------------------------------------- #
def _rebuild(graph, add, remove):
    edges = (set(graph.edges()) - set(remove)) | set(add)
    builder = GraphBuilder()
    for v in graph.vertices():
        builder.add_vertex(v)
    for u, v in sorted(edges):
        builder.add_edge(u, v)
    return builder.build()


def scenario_repair_vs_recompute(graph, queries) -> Dict[str, object]:
    rng = random.Random(SEED)
    remove = [tuple(e) for e in _sample_edges(graph, REPAIR_BATCH, SEED)]
    add = []
    while len(add) < REPAIR_BATCH:
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u != v and not graph.has_edge(u, v) and (u, v) not in add:
            add.append((u, v))
    new_graph = _rebuild(graph, add, remove)
    targets = sorted({q.target for q in queries})

    def best_of(fn):
        times = []
        for _ in range(REPAIR_REPS):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    repair_s = recompute_s = 0.0
    for target in targets:
        old_dist = bfs_distances_bounded(graph, target, cutoff=K, reverse=True)
        repair_s += best_of(
            lambda: repair_reverse_distances(
                new_graph, old_dist, target, cutoff=K, added=add, removed=remove
            )
        )
        recompute_s += best_of(
            lambda: bfs_distances_bounded(new_graph, target, cutoff=K, reverse=True)
        )
        dist, _ = repair_reverse_distances(
            new_graph, old_dist, target, cutoff=K, added=add, removed=remove
        )
        expected = bfs_distances_bounded(new_graph, target, cutoff=K, reverse=True)
        assert (dist == expected).all(), f"repair diverged for target {target}"

    ratio = repair_s / recompute_s
    assert ratio < 1.0, (
        f"incremental repair ({repair_s * 1e3:.2f} ms) did not beat full "
        f"recompute ({recompute_s * 1e3:.2f} ms)"
    )
    print(
        f"repair vs recompute: batch of {len(add)}+{len(remove)} edges over "
        f"{len(targets)} targets — repair {repair_s * 1e3:.2f} ms, recompute "
        f"{recompute_s * 1e3:.2f} ms (ratio {ratio:.3f} < 1)"
    )
    return {
        "targets": len(targets),
        "batch_added": len(add),
        "batch_removed": len(remove),
        "cutoff": K,
        "repair_ms": round(repair_s * 1e3, 3),
        "recompute_ms": round(recompute_s * 1e3, 3),
        "repair_over_recompute": round(ratio, 4),
        "exact": True,
    }


# --------------------------------------------------------------------- #
# scenario 3: payload equivalence across every live path
# --------------------------------------------------------------------- #
def scenario_payload_equivalence(graph, queries) -> Dict[str, object]:
    rng = random.Random(SEED + 1)
    remove = [tuple(e) for e in _sample_edges(graph, 6, SEED + 1)]
    add = []
    while len(add) < 6:
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u != v and not graph.has_edge(u, v) and (u, v) not in add:
            add.append((u, v))
    specs = [Q(q.source, q.target, q.k) for q in queries[: min(12, len(queries))]]

    overlay = DeltaOverlay(graph)
    overlay.add_edges(add)
    overlay.remove_edges(remove)
    candidates = {"overlay": overlay.materialize()}
    with LiveGraph(graph, compact_threshold=1) as live:
        live.apply(add=add, remove=remove)
        candidates["compacted"] = live.graph
        compactions = live.stats()["compactions"]
    with LiveGraph(graph, compact_threshold=10**9) as live:
        live.apply(add=add[:3], remove=remove[:3])
        live.apply(add=add[3:], remove=remove[3:])
        candidates["epoch_republished"] = live.graph

    with Database(_rebuild(graph, add, remove)) as reference:
        expected = reference.batch(specs, store_paths=True).payload_bytes()
    for label, candidate in candidates.items():
        with Database(candidate) as database:
            payload = database.batch(specs, store_paths=True).payload_bytes()
        assert payload == expected, f"{label} payload diverged from rebuild"

    print(
        f"payload equivalence: {len(specs)} queries byte-identical across "
        f"overlay, compacted ({compactions} compactions) and epoch-republished "
        f"graphs vs from-scratch rebuild"
    )
    return {
        "queries": len(specs),
        "batch_added": len(add),
        "batch_removed": len(remove),
        "byte_identical": True,
        "paths": sorted(candidates),
    }


def main() -> int:
    graph = load_dataset(DATASET)
    queries = _workload(graph)
    print(
        f"dataset {DATASET}: |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"{len(queries)} reads, quick={QUICK}"
    )

    results = {
        "mixed_traffic": scenario_mixed_traffic(graph, queries),
        "repair_vs_recompute": scenario_repair_vs_recompute(graph, queries),
        "payload_equivalence": scenario_payload_equivalence(graph, queries),
    }

    payload = {
        "benchmark": "live_updates",
        "dataset": DATASET,
        "quick": QUICK,
        "workload": {
            "reads": len(queries),
            "k": K,
            "num_targets": TARGETS,
            "seed": SEED,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "scenarios": results,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_live.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
