"""Table 2: properties of the (synthetic stand-in) datasets.

Prints, for every registered dataset, the paper's reported |V| / |E| / avg
degree next to the measured properties of the scaled-down synthetic graph
used throughout this benchmark suite.
"""

from __future__ import annotations

from _bench_common import dataset, persist, run_once

from repro.bench.reporting import format_table
from repro.graph.properties import summarize
from repro.workloads.datasets import registry


def _collect_rows():
    rows = []
    for name, spec in registry().items():
        summary = summarize(dataset(name))
        rows.append(
            {
                "name": name,
                "dataset": spec.full_name,
                "type": spec.category,
                "paper |V|": spec.paper_vertices,
                "paper |E|": spec.paper_edges,
                "paper d_avg": spec.paper_avg_degree,
                "|V|": summary.num_vertices,
                "|E|": summary.num_edges,
                "d_avg": round(summary.avg_degree, 1),
            }
        )
    return rows


def test_table2_dataset_properties(benchmark):
    rows = run_once(benchmark, _collect_rows)
    persist(
        "table2_datasets",
        format_table(rows, title="Table 2: dataset properties (paper vs. stand-in)",
                     scientific=False),
    )
    assert len(rows) == 15
