"""Shared helpers for the benchmark suite.

Every file in this directory regenerates one table or figure of the paper.
The common pattern is:

1. build (or fetch from cache) the dataset stand-ins and query workloads at
   the scaled-down sizes documented in DESIGN.md;
2. run the measurement once inside ``benchmark.pedantic(..., rounds=1)`` so
   pytest-benchmark records the end-to-end harness time;
3. render the paper-shaped table/series with :mod:`repro.bench.reporting`,
   print it and persist it under ``benchmarks/results/`` so the output
   survives pytest's stdout capturing.

The scaled measurement settings keep the whole suite in the minutes range on
a laptop while preserving the paper's relative comparisons.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.runner import BenchmarkSettings
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import QuerySetting, generate_query_set

#: Directory where every benchmark drops its rendered table/series.
RESULTS_DIR = Path(__file__).parent / "results"

#: The representative graphs of Section 7.2: ``ep`` (long-running queries)
#: and ``gg`` (short-running queries).
REPRESENTATIVE_DATASETS = ("ep", "gg")

#: Hop-constraint sweep used by the per-k figures (the paper uses 3..8; the
#: upper end is trimmed to keep pure-Python baselines inside the time budget).
K_SWEEP = (3, 4, 5, 6)

#: Default per-query measurement settings for the benchmark suite.
BENCH_SETTINGS = BenchmarkSettings(time_limit_seconds=1.0, response_k=100, store_paths=False)

#: Number of queries per workload (the paper uses 1 000).
QUERIES_PER_WORKLOAD = 4

_WORKLOAD_CACHE = {}


def dataset(name: str):
    """Load a dataset stand-in (cached across benchmarks)."""
    return load_dataset(name)


def workload(name: str, *, k: int = 6, count: int = QUERIES_PER_WORKLOAD):
    """A hard (V' x V') query workload on the named dataset (cached)."""
    key = (name, k, count)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = generate_query_set(
            dataset(name),
            count=count,
            k=k,
            setting=QuerySetting.HIGH_HIGH,
            seed=2021,
            graph_name=name,
        )
    return _WORKLOAD_CACHE[key]


def persist(name: str, text: str) -> None:
    """Print a rendered table/series and save it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
