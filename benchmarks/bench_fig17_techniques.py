"""Figure 17: execution time of every individual technique with k varied.

Reports BFS, index construction, join-order optimization, DFS enumeration
and join enumeration separately.  Expected shape (paper): BFS dominates the
index construction; the optimization cost is small and roughly constant;
DFS is cheaper than the join for small k and the join catches up as the
search space grows.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.breakdown import technique_breakdown
from repro.bench.reporting import format_table


def _run_fig17():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        breakdown = technique_breakdown(
            dataset(name), workload(name), ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        for k, values in breakdown.items():
            rows.append(
                {
                    "dataset": name,
                    "k": k,
                    "bfs_ms": values["bfs_ms"],
                    "index_construction_ms": values["index_construction_ms"],
                    "optimization_ms": values["optimization_ms"],
                    "dfs_ms": values["dfs_ms"],
                    "join_ms": values["join_ms"],
                }
            )
    return rows


def test_fig17_individual_techniques(benchmark):
    rows = run_once(benchmark, _run_fig17)
    persist(
        "fig17_techniques",
        format_table(rows, title="Figure 17: execution time of each individual technique (ms)"),
    )
    for row in rows:
        assert row["bfs_ms"] <= row["index_construction_ms"] + 1e-6
        assert row["optimization_ms"] >= 0.0
