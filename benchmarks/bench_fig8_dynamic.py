"""Figure 8: 99.9% response-time latency on dynamic graphs with k varied.

10% of each representative graph's edges are replayed as insertions; every
insertion triggers a cycle query and the tail latency of the response time
is reported.  The replay runs through the ``repro.api`` façade: updates are
published as live epochs via ``Database.insert_edges`` and each cycle query
is a ``QuerySpec`` submitted to a ``Database`` (see ``repro.bench.dynamic``).
Expected shape (paper): IDX-DFS keeps the tail latency one to two orders of
magnitude below BC-DFS because the per-query index needs no maintenance
under updates.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
)

from repro.bench.dynamic import dynamic_latency
from repro.bench.reporting import format_table
from repro.workloads.dynamic import build_dynamic_workload

ALGORITHMS = ("BC-DFS", "IDX-DFS")
UPDATES_PER_GRAPH = 5


def _run_fig8():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        stream = build_dynamic_workload(
            dataset(name), update_fraction=0.10, max_updates=UPDATES_PER_GRAPH, seed=2021
        )
        latency = dynamic_latency(
            stream, ALGORITHMS, ks=K_SWEEP, settings=BENCH_SETTINGS, percentile=99.9
        )
        for k, per_algorithm in latency.items():
            for algorithm, value in per_algorithm.items():
                rows.append(
                    {"dataset": name, "k": k, "algorithm": algorithm, "p99.9_ms": value}
                )
    return rows


def test_fig8_dynamic_latency(benchmark):
    rows = run_once(benchmark, _run_fig8)
    persist(
        "fig8_dynamic_latency",
        format_table(rows, title="Figure 8: 99.9% response-time latency on dynamic graphs (ms)"),
    )
    assert len(rows) == len(REPRESENTATIVE_DATASETS) * len(K_SWEEP) * len(ALGORITHMS)
