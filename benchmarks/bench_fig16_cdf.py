"""Figure 16: cumulative distribution of per-query time for all five algorithms.

Expected shape (paper): the index-based curves reach 100% far to the left of
BC-DFS / BC-JOIN; on the hard graph a visible fraction of BC-DFS queries
only terminates at the time limit.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.baselines.registry import PAPER_ALGORITHMS
from repro.bench.metrics import cumulative_distribution
from repro.bench.reporting import format_table
from repro.bench.runner import run_workload

CDF_K = 5
CDF_POINTS = 6


def _run_fig16():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        for algorithm in PAPER_ALGORITHMS:
            results = run_workload(
                algorithm, dataset(name), workload(name, k=CDF_K), settings=BENCH_SETTINGS
            )
            for query_ms, fraction in cumulative_distribution(results, points=CDF_POINTS):
                rows.append(
                    {
                        "dataset": name,
                        "algorithm": algorithm,
                        "query_ms": query_ms,
                        "fraction_completed": fraction,
                    }
                )
    return rows


def test_fig16_query_time_cdf(benchmark):
    rows = run_once(benchmark, _run_fig16)
    persist(
        "fig16_cdf",
        format_table(rows, title=f"Figure 16: cumulative distribution of query time (k={CDF_K})"),
    )
    # Every CDF ends at fraction 1.0.
    final = {}
    for row in rows:
        final[(row["dataset"], row["algorithm"])] = row["fraction_completed"]
    assert all(abs(value - 1.0) < 1e-9 for value in final.values())
