"""Ablation: optimizer-chosen cut position vs. the naive middle cut.

BC-JOIN always splits the query at the middle position; IDX-JOIN lets the
full-fledged estimator choose the cut that minimises the two sub-query
sizes.  This ablation runs the index join at every cut position and compares
the cost-model choice against the middle and against the measured best,
quantifying how much the query optimizer contributes on its own.
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, REPRESENTATIVE_DATASETS, dataset, persist, run_once, workload

from repro.bench.reporting import format_table
from repro.bench.spectrum import spectrum_analysis
from repro.core.estimator import find_cut_position, full_estimate
from repro.core.index import LightWeightIndex

ABLATION_K = 6


def _run_ablation():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        graph = dataset(name)
        query = workload(name, k=ABLATION_K).queries[0]
        index = LightWeightIndex.build(graph, query)
        chosen_cut = find_cut_position(full_estimate(index))
        analysis = spectrum_analysis(
            graph, query, time_limit_seconds=BENCH_SETTINGS.time_limit_seconds
        )
        bushy = {p.cut_position: p.enumeration_ms for p in analysis.bushy_points()}
        best_cut = min(bushy, key=bushy.get)
        middle_cut = ABLATION_K // 2
        rows.append(
            {
                "dataset": name,
                "chosen_cut": chosen_cut,
                "chosen_ms": bushy[chosen_cut],
                "middle_cut": middle_cut,
                "middle_ms": bushy.get(middle_cut),
                "best_cut": best_cut,
                "best_ms": bushy[best_cut],
                "left_deep_ms": analysis.left_deep_points()[0].enumeration_ms,
            }
        )
    return rows


def test_ablation_cut_position(benchmark):
    rows = run_once(benchmark, _run_ablation)
    persist(
        "ablation_cut_position",
        format_table(rows, title=f"Ablation: cost-based cut vs. middle cut (k={ABLATION_K})"),
    )
    for row in rows:
        assert 1 <= row["chosen_cut"] <= ABLATION_K - 1
        assert row["best_ms"] <= row["chosen_ms"] + 1e-9
