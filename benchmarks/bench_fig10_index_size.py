"""Figure 10: enumeration time vs. index size (log-log regression).

Per-query scatter points of (index edges, enumeration milliseconds) for
IDX-DFS on the representative graphs, plus the fitted log-log line.
Expected shape (paper): a positive but weaker correlation than the one
against the number of results (Figure 11).
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, REPRESENTATIVE_DATASETS, dataset, persist, run_once, workload

from repro.bench.regression import index_size_vs_time
from repro.bench.reporting import format_table

FIG10_K = 5
FIG10_QUERIES = 8


def _run_fig10():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        points, fit = index_size_vs_time(
            dataset(name),
            workload(name, k=FIG10_K, count=FIG10_QUERIES),
            settings=BENCH_SETTINGS,
        )
        rows.append(
            {
                "dataset": name,
                "points": fit.num_points,
                "slope": fit.slope,
                "intercept": fit.intercept,
                "correlation": fit.correlation,
                "min_index_edges": min(p[0] for p in points),
                "max_index_edges": max(p[0] for p in points),
            }
        )
    return rows


def test_fig10_index_size_regression(benchmark):
    rows = run_once(benchmark, _run_fig10)
    persist(
        "fig10_index_size",
        format_table(rows, title="Figure 10: enumeration time vs. index size (log-log fit)"),
    )
    assert len(rows) == len(REPRESENTATIVE_DATASETS)
