"""Table 3: overall comparison of all five algorithms on every dataset.

For each dataset stand-in (excluding the scalability graph ``tm``, which has
its own experiment in Figure 12), the hard query set (s, t in V') is
evaluated with BC-DFS, BC-JOIN, IDX-DFS, IDX-JOIN and PathEnum, and the three
paper metrics — query time, throughput, response time — are reported.

Expected shape (paper): the index-based algorithms beat BC-DFS / BC-JOIN by
one to two orders of magnitude on the hard graphs (``ep``, ``sl``, ``ye``,
``da``), while PathEnum tracks the better of IDX-DFS / IDX-JOIN everywhere.
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, dataset, persist, run_once, workload

from repro.baselines.registry import PAPER_ALGORITHMS
from repro.bench.comparison import overall_comparison
from repro.bench.reporting import format_table
from repro.workloads.datasets import dataset_names

#: k used for the overall comparison (the paper uses 6; 4 keeps the pure
#: Python baselines inside the per-query time limit on every dataset).
TABLE3_K = 4


def _run_table3():
    rows = []
    for name in dataset_names(include_scalability=False):
        metrics = overall_comparison(
            dataset(name),
            workload(name, k=TABLE3_K),
            PAPER_ALGORITHMS,
            settings=BENCH_SETTINGS,
        )
        for algorithm in PAPER_ALGORITHMS:
            metric = metrics[algorithm]
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algorithm,
                    "query_ms": metric.mean_query_ms,
                    "throughput": metric.mean_throughput,
                    "response_ms": metric.mean_response_ms,
                    "timeout_frac": metric.timeout_fraction,
                }
            )
    return rows


def test_table3_overall_comparison(benchmark):
    rows = run_once(benchmark, _run_table3)
    persist(
        "table3_overall",
        format_table(
            rows,
            title=f"Table 3: overall comparison (k={TABLE3_K}, hard query set)",
        ),
    )
    # Sanity: every dataset has one row per algorithm.
    datasets = {row["dataset"] for row in rows}
    assert len(rows) == len(datasets) * len(PAPER_ALGORITHMS)
    # Shape check: on the hard social graph the index DFS beats BC-DFS.
    ep_rows = {row["algorithm"]: row for row in rows if row["dataset"] == "ep"}
    assert ep_rows["IDX-DFS"]["query_ms"] <= ep_rows["BC-DFS"]["query_ms"]
