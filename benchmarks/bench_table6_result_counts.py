"""Table 6: average and maximum number of results with k varied.

Expected shape (paper): result counts grow by roughly two orders of
magnitude per added hop on the hard graph and the hard graph (``ep``) has
far more results than the easy one (``gg``) — which is why its queries take
longer (Figure 7) and why some of them can only be truncated.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.comparison import result_count_statistics
from repro.bench.reporting import format_table


def _run_table6():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        stats = result_count_statistics(
            dataset(name), workload(name), ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        for k, row in stats.items():
            rows.append(
                {
                    "dataset": name,
                    "k": k,
                    "avg_results": row["avg"],
                    "max_results": row["max"],
                    "truncated": row["truncated"],
                }
            )
    return rows


def test_table6_result_counts(benchmark):
    rows = run_once(benchmark, _run_table6)
    persist(
        "table6_result_counts",
        format_table(rows, title="Table 6: average / maximum number of results"),
    )
    by_key = {(r["dataset"], r["k"]): r for r in rows}
    # Counts grow from the smallest to the largest k (timeouts can flatten
    # the curve near the top, so only the endpoints are compared).
    smallest, top = min(K_SWEEP), max(K_SWEEP)
    for name in REPRESENTATIVE_DATASETS:
        assert by_key[(name, top)]["avg_results"] >= by_key[(name, smallest)]["avg_results"]
    # The hard graph has more results than the easy one at the largest k.
    assert by_key[("ep", top)]["avg_results"] >= by_key[("gg", top)]["avg_results"]
