"""Table 5: throughput and response time on short vs. long (outlier) queries.

The paper evaluates ``ep`` with k = 8 and splits queries at 60 s.  Here the
hard representative graph is evaluated at the top of the scaled k sweep and
split at half of the scaled time limit.  Expected shape: IDX-DFS keeps a
high throughput and a low response time on both classes — the outliers time
out only because they simply have too many results to emit.
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, K_SWEEP, dataset, persist, run_once, workload

from repro.bench.comparison import outlier_split
from repro.bench.reporting import format_table
from repro.bench.runner import run_workload

ALGORITHMS = ("BC-DFS", "IDX-DFS")
DATASET = "ep"


def _run_table5():
    k = max(K_SWEEP)
    threshold_ms = BENCH_SETTINGS.time_limit_seconds * 1e3 / 2
    rows = []
    for algorithm in ALGORITHMS:
        results = run_workload(
            algorithm, dataset(DATASET), workload(DATASET, k=k), settings=BENCH_SETTINGS
        )
        split = outlier_split(results, short_threshold_ms=threshold_ms)
        rows.append({"dataset": DATASET, "k": k, **split.as_row()})
    return rows


def test_table5_outlier_queries(benchmark):
    rows = run_once(benchmark, _run_table5)
    persist(
        "table5_outliers",
        format_table(rows, title="Table 5: short vs. long running queries (ep, max k)"),
    )
    assert {row["algorithm"] for row in rows} == set(ALGORITHMS)
