"""Micro-benchmark: process-parallel sharded batches vs. the thread executor.

Contenders, all evaluating the same target-centric workload (the serving
traffic shape: a large batch of point lookups concentrated on a small set
of targets, endpoints drawn from the ordinary-degree class ``V''``):

* ``sequential`` — one :class:`~repro.core.engine.QuerySession`, one query
  at a time (the correctness reference);
* ``threaded``   — the PR 1 :class:`~repro.core.engine.BatchExecutor` at
  4 worker threads (GIL-bound);
* ``process-N``  — :class:`~repro.core.engine.ProcessBatchExecutor` at
  N ∈ {1, 2, 4} worker processes attached to the shared-memory graph and
  distance cache, with the per-shard multi-source forward-BFS sweep.

Two effects stack in the process numbers:

1. *sharded group preprocessing* — a shard owns every query of its targets,
   so the forward BFS trees of a target group are grown in one multi-source
   sweep and the reverse arrays come from the shared cache; this shrinks
   per-query CPU work and is visible even on a single core (``process-1``);
2. *process parallelism* — on multi-core hardware the shards run
   concurrently without GIL contention; on the single-core container that
   produced the committed results this term contributes nothing, so the
   recorded speedups are a *lower bound* for real hardware.

Before timing, the harness asserts that per-query result payloads
``(source, target, k, count, paths)`` are byte-identical (equal pickles)
between the sequential session and every process configuration.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_process_batch.py``
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path
from typing import Dict, List

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.engine import BatchExecutor, ProcessBatchExecutor
from repro.core.listener import RunConfig
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import QuerySetting, generate_target_centric_set

RESULTS_DIR = Path(__file__).parent / "results"
DATASET = "gg"
SETTING = QuerySetting.LOW_LOW
QUERIES = 1200
TARGETS = 6
K_VALUES = (3, 4)
THREAD_WORKERS = 4
PROCESS_COUNTS = (1, 2, 4)
START_METHOD = "fork"
REPEATS = 7
SEED = 2021


def _payload(results) -> bytes:
    """Canonical bytes of the per-query result payloads (timings excluded)."""
    return pickle.dumps(
        [(r.source, r.target, r.k, r.count, r.paths) for r in results]
    )


def _best_of(callable_, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - started)
    return min(samples)


def check_equivalence(graph, queries) -> Dict[str, bool]:
    """Byte-identical payload check: sequential session vs. every process mode."""
    config = RunConfig(store_paths=True)
    reference = _payload(BatchExecutor(graph).run(queries, config).results)
    verdict: Dict[str, bool] = {}
    for processes in PROCESS_COUNTS:
        with ProcessBatchExecutor(
            graph, processes=processes, start_method=START_METHOD
        ) as executor:
            candidate = _payload(executor.run(queries, config).results)
        identical = candidate == reference
        verdict[f"process-{processes}"] = identical
        assert identical, f"process-{processes} diverged from sequential results"
    return verdict


def bench_k(graph, k: int) -> Dict[str, object]:
    workload = generate_target_centric_set(
        graph,
        count=QUERIES,
        k=k,
        num_targets=TARGETS,
        setting=SETTING,
        seed=SEED,
        graph_name=DATASET,
    )
    queries = list(workload)
    config = RunConfig(store_paths=False)
    identical = check_equivalence(graph, queries)

    sequential = BatchExecutor(graph)
    sequential_seconds = _best_of(lambda: sequential.run(queries, config))
    total_paths = sequential.run(queries, config).total_paths

    threaded = BatchExecutor(graph, max_workers=THREAD_WORKERS)
    threaded_seconds = _best_of(lambda: threaded.run(queries, config))

    row: Dict[str, object] = {
        "queries": len(queries),
        "distinct_targets": len(workload.unique_targets()),
        "k": k,
        "paths": total_paths,
        "results_identical": identical,
        "sequential_ms": round(sequential_seconds * 1e3, 3),
        f"threaded{THREAD_WORKERS}_ms": round(threaded_seconds * 1e3, 3),
        "process": {},
    }
    print(
        f"k={k} ({len(queries)} queries, {TARGETS} targets): "
        f"sequential {sequential_seconds * 1e3:8.1f} ms | "
        f"threaded@{THREAD_WORKERS} {threaded_seconds * 1e3:8.1f} ms"
    )
    for processes in PROCESS_COUNTS:
        with ProcessBatchExecutor(
            graph, processes=processes, start_method=START_METHOD
        ) as executor:
            cold_started = time.perf_counter()
            executor.run(queries, config)
            cold_seconds = time.perf_counter() - cold_started
            warm_seconds = _best_of(lambda: executor.run(queries, config))
        speedup = threaded_seconds / warm_seconds
        throughput = len(queries) / warm_seconds
        row["process"][str(processes)] = {
            "cold_ms": round(cold_seconds * 1e3, 3),
            "warm_ms": round(warm_seconds * 1e3, 3),
            "speedup_vs_threaded": round(speedup, 2),
            "queries_per_second": round(throughput, 1),
        }
        print(
            f"  process@{processes}: cold {cold_seconds * 1e3:8.1f} ms | "
            f"warm {warm_seconds * 1e3:8.1f} ms | "
            f"x{speedup:.2f} vs threaded | {throughput:7.0f} q/s"
        )
    return row


def main() -> int:
    graph = load_dataset(DATASET)
    print(
        f"dataset {DATASET}: |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"cpus={os.cpu_count()}"
    )
    per_k: Dict[str, Dict[str, object]] = {}
    for k in K_VALUES:
        per_k[str(k)] = bench_k(graph, k)

    headline = per_k[str(K_VALUES[0])]
    payload = {
        "benchmark": "process_parallel_sharded_batches",
        "dataset": DATASET,
        "workload": {
            "setting": SETTING.value,
            "queries": QUERIES,
            "num_targets": TARGETS,
            "k_values": list(K_VALUES),
            "seed": SEED,
            "repeats": REPEATS,
            "timing": "best-of-N wall clock, warm worker pool",
            "start_method": START_METHOD,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "per_k": per_k,
        "summary": {
            "speedup_at_4_processes_vs_threaded": headline["process"]["4"][
                "speedup_vs_threaded"
            ],
            "results_byte_identical_to_sequential": all(
                all(row["results_identical"].values()) for row in per_k.values()
            ),
            "note": (
                "Measured on a single-core container: the recorded speedup "
                "comes entirely from target-sharded group preprocessing "
                "(shared distance cache + multi-source forward BFS); the "
                "process-parallel term adds on top of it on multi-core hosts."
            ),
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_process_batch.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
