"""Kernel benchmark: iterative array-native kernels vs the recursive engines.

Two claims are checked, then measured:

1. **Byte-identical results.**  A mixed workload is evaluated four ways —
   recursive engines, iterative kernels, the threaded
   :class:`~repro.core.engine.BatchExecutor` and the serving core
   (:class:`~repro.server.service.QueryService`) — and every per-query path
   list (order included) must be identical across all four.
2. **>= 2x enumeration speedup.**  On enumeration-heavy workloads (dense
   random digraphs and cliques where a single query yields 10^4..10^5
   paths), the kernels must run the enumeration phase at least twice as
   fast as the recursive engines, for both the DFS and the join plan.

``--quick`` is the CI smoke mode: a scaled-down tracked workload, the full
equivalence sweep, and a regression gate — divergence, or an enumeration
speedup more than 20 % below the committed baseline
(``results/BENCH_kernels.json``), fails the run.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_kernels.py [--quick]``
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.engine import BatchExecutor, IdxDfs, IdxJoin, PathEnum, QuerySession
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import Phase
from repro.graph.generators import complete_graph, erdos_renyi
from repro.server.service import QueryService

RESULTS_DIR = Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_kernels.json"

#: Repetitions per (workload, engine) measurement; the minimum is reported.
REPEATS = 3

#: The committed headline claim: kernels at least this much faster on the
#: tracked enumeration-heavy workloads.
REQUIRED_SPEEDUP = 2.0

#: Quick mode tolerates this much regression against the committed baseline
#: before failing the build.
QUICK_REGRESSION_TOLERANCE = 0.8


def _graph(spec: Dict) -> object:
    kind = spec["kind"]
    if kind == "erdos_renyi":
        return erdos_renyi(spec["n"], spec["avg_out_degree"], seed=spec["seed"])
    if kind == "complete":
        return complete_graph(spec["n"])
    raise ValueError(f"unknown graph kind {kind!r}")


#: Enumeration-heavy single queries.  ``tracked: True`` rows carry the >= 2x
#: claim; the untracked rows document behaviour on moderate result counts.
WORKLOADS = [
    {
        "name": "er-dense-k6",
        "graph": {"kind": "erdos_renyi", "n": 60, "avg_out_degree": 15.0, "seed": 3},
        "query": (0, 1, 6),
        "tracked": True,
    },
    {
        "name": "clique12-k6",
        "graph": {"kind": "complete", "n": 12},
        "query": (0, 11, 6),
        "tracked": True,
    },
    {
        "name": "er-mid-k5",
        "graph": {"kind": "erdos_renyi", "n": 80, "avg_out_degree": 12.0, "seed": 2},
        "query": (0, 1, 5),
        "tracked": False,
    },
]

#: Scaled-down tracked workload for the CI smoke gate: large enough
#: (tens of milliseconds a side) that best-of-5 ratios are stable on noisy
#: shared runners, small enough to stay a smoke test.
QUICK_WORKLOAD = {
    "name": "quick-er-k6",
    "graph": {"kind": "erdos_renyi", "n": 50, "avg_out_degree": 12.0, "seed": 3},
    "query": (0, 1, 6),
    "tracked": True,
}


def _enum_seconds(result) -> float:
    return result.stats.phase(Phase.ENUMERATION) + result.stats.phase(Phase.JOIN)


def measure_workload(spec: Dict, repeats: int = REPEATS) -> List[Dict]:
    """Measure kernel vs recursive for both fixed plans on one workload."""
    graph = _graph(spec["graph"])
    s, t, k = spec["query"]
    query = Query(s, t, k)
    rows = []
    for plan_name, algorithm in (("dfs", IdxDfs()), ("join", IdxJoin())):
        timings: Dict[str, Dict[str, float]] = {}
        counts = {}
        for engine in ("recursive", "kernel"):
            config = RunConfig(store_paths=True, engine=engine)
            best_total = best_enum = float("inf")
            for _ in range(repeats):
                # Collect leftovers, then keep the collector out of the
                # timed region: ambient garbage from earlier measurements
                # must not be charged to whichever engine happens to
                # allocate next.
                gc.collect()
                gc.disable()
                try:
                    started = time.perf_counter()
                    result = algorithm.run(graph, query, config)
                    total = time.perf_counter() - started
                finally:
                    gc.enable()
                best_total = min(best_total, total)
                best_enum = min(best_enum, _enum_seconds(result))
                counts[engine] = result.count
            timings[engine] = {"total": best_total, "enum": best_enum}
        assert counts["kernel"] == counts["recursive"]
        rows.append(
            {
                "workload": spec["name"],
                "graph": spec["graph"],
                "query": {"source": s, "target": t, "k": k},
                "plan": plan_name,
                "paths": counts["kernel"],
                "tracked": bool(spec["tracked"]),
                "recursive_enum_ms": round(timings["recursive"]["enum"] * 1e3, 3),
                "kernel_enum_ms": round(timings["kernel"]["enum"] * 1e3, 3),
                "recursive_total_ms": round(timings["recursive"]["total"] * 1e3, 3),
                "kernel_total_ms": round(timings["kernel"]["total"] * 1e3, 3),
                "enum_speedup": round(
                    timings["recursive"]["enum"] / max(timings["kernel"]["enum"], 1e-9), 3
                ),
                "total_speedup": round(
                    timings["recursive"]["total"] / max(timings["kernel"]["total"], 1e-9), 3
                ),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# equivalence across execution modes
# --------------------------------------------------------------------- #
def _equivalence_workload() -> tuple:
    graph = erdos_renyi(80, 10.0, seed=7)
    rng = np.random.default_rng(2021)
    queries = []
    while len(queries) < 12:
        s, t = (int(v) for v in rng.choice(graph.num_vertices, size=2, replace=False))
        queries.append(Query(s, t, int(rng.integers(3, 6))))
    return graph, queries


def check_equivalence() -> Dict[str, object]:
    """Evaluate one workload through every execution mode; paths must match."""
    graph, queries = _equivalence_workload()

    def paths_of(results):
        return [(r.count, r.paths) for r in results]

    # Every mode evaluates through session semantics (shared reverse-BFS
    # distance cache), exactly like the executors and the service do, so the
    # reference is a sequential recursive QuerySession run.
    config_recursive = RunConfig(store_paths=True, engine="recursive")
    config_kernel = RunConfig(store_paths=True, engine="kernel")
    reference_session = QuerySession(graph, algorithm=PathEnum())
    reference = paths_of([reference_session.run(q, config_recursive) for q in queries])
    kernel_session = QuerySession(graph, algorithm=PathEnum())
    kernel = paths_of([kernel_session.run(q, config_kernel) for q in queries])

    executor = BatchExecutor(graph, algorithm=PathEnum(), max_workers=2)
    batch = paths_of(executor.run(queries, config_kernel).results)

    async def _served():
        service = QueryService(graph, algorithm=PathEnum(), threads=2)
        try:
            return await service.run(queries, config_kernel)
        finally:
            await service.close()

    served = paths_of(asyncio.run(_served()))

    modes = {"kernel": kernel, "batch_threads": batch, "served": served}
    divergent = [name for name, got in modes.items() if got != reference]
    return {
        "queries": len(queries),
        "total_paths": sum(count for count, _ in reference),
        "modes": ["recursive"] + sorted(modes),
        "byte_identical": not divergent,
        "divergent_modes": divergent,
    }


def _print_rows(rows: List[Dict]) -> None:
    header = f"{'workload':<14} {'plan':<5} {'paths':>8} {'recursive':>12} {'kernel':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['workload']:<14} {row['plan']:<5} {row['paths']:>8} "
            f"{row['recursive_enum_ms']:>10.1f}ms {row['kernel_enum_ms']:>8.1f}ms "
            f"{row['enum_speedup']:>7.2f}x"
        )


def _baseline_quick_speedups() -> Optional[Dict[str, float]]:
    if not RESULT_FILE.exists():
        return None
    try:
        committed = json.loads(RESULT_FILE.read_text())
        return {
            row["plan"]: row["enum_speedup"] for row in committed["quick"]["rows"]
        }
    except (KeyError, ValueError, TypeError):
        return None


def run_quick() -> int:
    print("equivalence sweep (recursive / kernel / batch / served) ...")
    equivalence = check_equivalence()
    if not equivalence["byte_identical"]:
        print(f"FAIL: modes diverged from the recursive reference: "
              f"{equivalence['divergent_modes']}")
        return 1
    print(f"byte-identical across {equivalence['modes']} "
          f"({equivalence['queries']} queries, {equivalence['total_paths']} paths)")

    rows = measure_workload(QUICK_WORKLOAD, repeats=5)
    _print_rows(rows)
    baseline = _baseline_quick_speedups()
    failed = False
    for row in rows:
        floor = 1.0
        if baseline and row["plan"] in baseline:
            floor = max(floor, baseline[row["plan"]] * QUICK_REGRESSION_TOLERANCE)
        if row["enum_speedup"] < floor:
            print(
                f"FAIL: {row['plan']} kernel speedup {row['enum_speedup']:.2f}x "
                f"below the regression floor {floor:.2f}x"
            )
            failed = True
    if not failed:
        print("kernel speedups within the regression budget")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: equivalence + regression gate, no result file",
    )
    args = parser.parse_args()
    if args.quick:
        return run_quick()

    print("equivalence sweep (recursive / kernel / batch / served) ...")
    equivalence = check_equivalence()
    assert equivalence["byte_identical"], equivalence
    print(f"byte-identical across {equivalence['modes']} "
          f"({equivalence['queries']} queries, {equivalence['total_paths']} paths)")

    rows: List[Dict] = []
    for spec in WORKLOADS:
        rows.extend(measure_workload(spec))
    _print_rows(rows)

    tracked = [row for row in rows if row["tracked"]]
    min_tracked = min(row["enum_speedup"] for row in tracked)
    if min_tracked < REQUIRED_SPEEDUP:
        print(f"WARNING: minimum tracked speedup {min_tracked:.2f}x "
              f"is below the {REQUIRED_SPEEDUP:.1f}x claim")

    quick_rows = measure_workload(QUICK_WORKLOAD, repeats=5)

    payload = {
        "benchmark": "array_native_enumeration_kernels",
        "claim": f">= {REQUIRED_SPEEDUP:.0f}x enumeration speedup on tracked "
                 "enumeration-heavy workloads, byte-identical results",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "settings": {
            "repeats": REPEATS,
            "store_paths": True,
            "timing": "best-of-N enumeration phase (index build excluded); "
                      "total includes the identical index build",
        },
        "equivalence": equivalence,
        "workloads": rows,
        "summary": {
            "min_tracked_enum_speedup": min_tracked,
            "dfs_speedups": [r["enum_speedup"] for r in rows if r["plan"] == "dfs"],
            "join_speedups": [r["enum_speedup"] for r in rows if r["plan"] == "join"],
            "meets_claim": min_tracked >= REQUIRED_SPEEDUP,
        },
        "quick": {
            "workload": QUICK_WORKLOAD["name"],
            "regression_tolerance": QUICK_REGRESSION_TOLERANCE,
            "rows": quick_rows,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULT_FILE}")
    print(f"minimum tracked enumeration speedup: {min_tracked:.2f}x "
          f"(claim: >= {REQUIRED_SPEEDUP:.0f}x)")
    return 0 if min_tracked >= REQUIRED_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
