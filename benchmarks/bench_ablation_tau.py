"""Ablation: the preliminary-estimator threshold tau (Section 6.2).

PathEnum only pays for the full-fledged optimizer when the preliminary
estimate exceeds tau.  This ablation sweeps tau from "always optimize"
(tau = 0) to "never optimize" (tau = infinity) and reports the mean query
time, showing the regime the paper describes: optimizing everything hurts
the short queries, never optimizing hurts the heavy ones, and the default
threshold sits between the two.
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, REPRESENTATIVE_DATASETS, dataset, persist, run_once, workload

from repro.bench.reporting import format_table
from repro.bench.runner import run_workload
from repro.core.engine import PathEnum

TAU_VALUES = (0.0, 1e2, 1e5, float("inf"))
ABLATION_K = 5


def _run_ablation():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        graph = dataset(name)
        queries = workload(name, k=ABLATION_K)
        for tau in TAU_VALUES:
            results = run_workload(
                PathEnum(tau=tau), graph, queries, settings=BENCH_SETTINGS
            )
            join_plans = sum(1 for r in results if r.stats.plan == "join")
            rows.append(
                {
                    "dataset": name,
                    "tau": tau,
                    "query_ms": sum(r.query_millis for r in results) / len(results),
                    "join_plans": join_plans,
                    "dfs_plans": len(results) - join_plans,
                }
            )
    return rows


def test_ablation_preliminary_threshold(benchmark):
    rows = run_once(benchmark, _run_ablation)
    persist(
        "ablation_tau",
        format_table(rows, title=f"Ablation: preliminary-estimator threshold tau (k={ABLATION_K})"),
    )
    # tau = infinity never runs the optimizer, so it never picks a join plan.
    for row in rows:
        if row["tau"] == float("inf"):
            assert row["join_plans"] == 0
