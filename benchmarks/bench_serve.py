"""Serving benchmark: open-loop latency percentiles under concurrent clients.

Boots a real ``repro serve`` process, then drives open-loop Poisson traffic
(the paper's Figure-8 percentile view, lifted from one-shot batches to a
long-lived service) at several concurrency levels:

* one *level* = ``C`` concurrent client connections offering a combined
  ``C x RATE_PER_CLIENT`` queries/second for ``DURATION_SECONDS``;
* every query is its own job, submitted at its scheduled Poisson arrival
  time whether or not earlier queries finished — when the service
  saturates, the tail percentiles grow instead of the load generator
  politely waiting, so p99/p99.9 are honest;
* latency = client-observed completion time from the *scheduled* arrival
  (queueing delay included), summarised by
  :func:`repro.bench.metrics.latency_summary`.

Before timing, the harness asserts that a full workload served over TCP is
byte-identical — path lists and their order included — to a sequential
:class:`~repro.core.engine.QuerySession` run, and that the first result
frame arrives well before job completion (streaming, not one final blob).

Run directly:  ``PYTHONPATH=src python benchmarks/bench_serve.py``
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import re
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.bench.metrics import latency_summary
from repro.bench.reporting import format_latency_summary
from repro.core.engine import QuerySession
from repro.core.listener import RunConfig
from repro.server.client import open_loop_load, run_queries
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_target_centric_set, poisson_arrival_times

RESULTS_DIR = Path(__file__).parent / "results"
DATASET = "ye"
K = 3
TARGETS = 8
WORKLOAD_QUERIES = 200
CONCURRENCY_LEVELS = (1, 4, 16, 64)
RATE_PER_CLIENT = 40.0  # offered queries/second per concurrent client
DURATION_SECONDS = 3.0
MAX_QUERIES_PER_LEVEL = 4000
SERVER_THREADS = 2
SEED = 2021


def boot_server() -> subprocess.Popen:
    """Start ``repro serve`` on a free port; returns the process (port attached)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", DATASET, "--port", "0", "--threads", str(SERVER_THREADS),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    match = re.search(r"serving on [\d.]+:(\d+)", banner)
    if not match:
        process.terminate()
        raise RuntimeError(f"server failed to boot: {banner!r}")
    process.bench_port = int(match.group(1))  # type: ignore[attr-defined]
    return process


def check_equivalence(port: int, queries) -> Dict[str, object]:
    """Served results must be byte-identical to a sequential session run."""
    graph = load_dataset(DATASET)
    session = QuerySession(graph)
    expected = [session.run(q, RunConfig(store_paths=True)) for q in queries]
    outcome = run_queries(
        [[q.source, q.target, q.k] for q in queries], port=port, store_paths=True
    )
    assert outcome.status == "done", outcome.info
    for exp, act in zip(expected, outcome.results):
        assert (act.source, act.target, act.k) == (exp.source, exp.target, exp.k)
        assert act.count == exp.count
        assert act.paths == exp.paths, "served paths diverged from the session run"
    streamed_early = (
        outcome.first_frame_seconds is not None
        and outcome.first_frame_seconds < outcome.wall_seconds
    )
    assert streamed_early, "first frame did not precede job completion"
    print(
        f"equivalence: {len(queries)} queries byte-identical over TCP "
        f"(first frame {outcome.first_frame_seconds * 1e3:.1f} ms, "
        f"done {outcome.wall_seconds * 1e3:.1f} ms)"
    )
    return {
        "queries": len(queries),
        "byte_identical": True,
        "first_frame_ms": round(outcome.first_frame_seconds * 1e3, 3),
        "done_ms": round(outcome.wall_seconds * 1e3, 3),
    }


def bench_level(port: int, workload, concurrency: int) -> Dict[str, object]:
    rate = RATE_PER_CLIENT * concurrency
    count = min(int(rate * DURATION_SECONDS), MAX_QUERIES_PER_LEVEL)
    pool = [[q.source, q.target, q.k] for q in workload]
    queries = [pool[i % len(pool)] for i in range(count)]
    arrivals = poisson_arrival_times(count, rate, seed=SEED + concurrency).tolist()
    report = asyncio.run(
        open_loop_load(queries, arrivals, port=port, connections=concurrency)
    )
    assert report.errors == 0, f"{report.errors} queries failed at C={concurrency}"
    summary = latency_summary(report.latencies_ms)
    print(
        f"C={concurrency:>2}: offered {rate:7.0f} q/s | achieved "
        f"{report.achieved_qps:7.0f} q/s | {report.completed} queries"
    )
    print(format_latency_summary(summary, title=None))
    return {
        "concurrency": concurrency,
        "offered_qps": round(rate, 1),
        "achieved_qps": round(report.achieved_qps, 1),
        "queries": report.completed,
        "errors": report.errors,
        "total_paths": report.total_paths,
        "wall_seconds": round(report.wall_seconds, 3),
        "latency_ms": {key: round(value, 3) for key, value in summary.items()},
    }


def main() -> int:
    graph = load_dataset(DATASET)
    workload = generate_target_centric_set(
        graph, count=WORKLOAD_QUERIES, k=K, num_targets=TARGETS,
        seed=SEED, graph_name=DATASET,
    )
    queries = list(workload)
    print(
        f"dataset {DATASET}: |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"cpus={os.cpu_count()}, server threads={SERVER_THREADS}"
    )

    server = boot_server()
    try:
        port = server.bench_port  # type: ignore[attr-defined]
        equivalence = check_equivalence(port, queries[:100])
        levels: List[Dict[str, object]] = []
        for concurrency in CONCURRENCY_LEVELS:
            levels.append(bench_level(port, queries, concurrency))
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            raise
    clean_shutdown = server.returncode == 0
    print(f"server shut down cleanly: {clean_shutdown}")
    assert clean_shutdown, f"server exited with {server.returncode}"

    payload = {
        "benchmark": "async_query_service_open_loop",
        "dataset": DATASET,
        "workload": {
            "setting": workload.setting.value,
            "k": K,
            "num_targets": TARGETS,
            "rate_per_client_qps": RATE_PER_CLIENT,
            "duration_seconds": DURATION_SECONDS,
            "arrivals": "Poisson (seeded numpy Generator), open loop",
            "latency": "client-observed completion from scheduled arrival, ms",
            "seed": SEED,
        },
        "server": {
            "transport": "tcp, length-prefixed JSON frames",
            "backend": "thread",
            "workers": SERVER_THREADS,
            "store_paths": False,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "equivalence": equivalence,
        "levels": levels,
        "clean_shutdown": clean_shutdown,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_serve.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
