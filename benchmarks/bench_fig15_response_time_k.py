"""Figure 15: response time (time to the first results) of BC-DFS vs. IDX-DFS.

Expected shape (paper): the response time of IDX-DFS grows only mildly with
k and stays well below BC-DFS — the property that makes it suitable for the
real-time applications of Section 1.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.comparison import sweep_k
from repro.bench.reporting import format_series

ALGORITHMS = ("BC-DFS", "IDX-DFS")


def _run_fig15():
    per_dataset = {}
    for name in REPRESENTATIVE_DATASETS:
        sweep = sweep_k(
            dataset(name), workload(name), ALGORITHMS, ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        per_dataset[name] = {
            algorithm: {k: sweep[k][algorithm].mean_response_ms for k in K_SWEEP}
            for algorithm in ALGORITHMS
        }
    return per_dataset


def test_fig15_response_time_vs_k(benchmark):
    per_dataset = run_once(benchmark, _run_fig15)
    text_blocks = [
        format_series(series, x_label="k", title=f"Figure 15 ({name}): response time (ms)")
        for name, series in per_dataset.items()
    ]
    persist("fig15_response_time_k", "\n\n".join(text_blocks))
    # Shape check: IDX-DFS responds well within the per-query time limit at
    # every k — the real-time property the figure demonstrates.  (On the
    # scaled-down graphs the fixed index-construction cost makes the absolute
    # response times of BC-DFS and IDX-DFS comparable, unlike the paper's
    # full-size graphs; EXPERIMENTS.md discusses this deviation.)
    limit_ms = BENCH_SETTINGS.time_limit_seconds * 1e3
    for name in REPRESENTATIVE_DATASETS:
        for k in K_SWEEP:
            assert per_dataset[name]["IDX-DFS"][k] <= 0.2 * limit_ms
