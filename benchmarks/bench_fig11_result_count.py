"""Figure 11: enumeration time vs. number of results (log-log regression).

Expected shape (paper): the correlation with the result count is stronger
than the correlation with the index size (Figure 10) — the enumeration time
is essentially output-bound, which is the point of the O(k x delta_W) bound.
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, REPRESENTATIVE_DATASETS, dataset, persist, run_once, workload

from repro.bench.regression import index_size_vs_time, result_count_vs_time
from repro.bench.reporting import format_table

FIG11_K = 5
FIG11_QUERIES = 8


def _run_fig11():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        graph = dataset(name)
        queries = workload(name, k=FIG11_K, count=FIG11_QUERIES)
        _, result_fit = result_count_vs_time(graph, queries, settings=BENCH_SETTINGS)
        _, index_fit = index_size_vs_time(graph, queries, settings=BENCH_SETTINGS)
        rows.append(
            {
                "dataset": name,
                "points": result_fit.num_points,
                "slope": result_fit.slope,
                "correlation_vs_results": result_fit.correlation,
                "correlation_vs_index_size": index_fit.correlation,
            }
        )
    return rows


def test_fig11_result_count_regression(benchmark):
    rows = run_once(benchmark, _run_fig11)
    persist(
        "fig11_result_count",
        format_table(
            rows,
            title="Figure 11: enumeration time vs. #results (log-log fit, vs. Figure 10)",
        ),
    )
    # Shape check: enumeration time correlates positively with #results.
    assert all(row["correlation_vs_results"] > 0.0 for row in rows)
