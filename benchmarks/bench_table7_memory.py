"""Table 7: maximum memory of the index and of IDX-JOIN's partial results.

Expected shape (paper): the index stays small (it is bounded by the filtered
edge set) while the materialised partial results of IDX-JOIN grow with the
result count and dominate at large k on the hard graph.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.bench.memory import memory_consumption
from repro.bench.reporting import format_table


def _run_table7():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        footprints = memory_consumption(
            dataset(name), workload(name), ks=K_SWEEP, settings=BENCH_SETTINGS
        )
        for k, footprint in footprints.items():
            rows.append({"dataset": name, **footprint.as_row()})
    return rows


def test_table7_memory_consumption(benchmark):
    rows = run_once(benchmark, _run_table7)
    persist(
        "table7_memory",
        format_table(rows, title="Table 7: maximum memory consumption (MB)"),
    )
    by_key = {(r["dataset"], r["k"]): r for r in rows}
    for name in REPRESENTATIVE_DATASETS:
        ks = sorted(K_SWEEP)
        for small, large in zip(ks, ks[1:]):
            assert by_key[(name, large)]["index_mb"] >= by_key[(name, small)]["index_mb"]
    # Partial results on the hard graph outgrow those on the easy graph.
    top = max(K_SWEEP)
    assert (
        by_key[("ep", top)]["partial_results_mb"]
        >= by_key[("gg", top)]["partial_results_mb"]
    )
