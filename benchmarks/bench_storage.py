"""Storage backend benchmark: snapshot stores vs the ``.npz`` heap pipeline.

Three claims are checked, then measured:

1. **Byte-identical enumeration payloads.**  A mixed workload is evaluated
   on every storage backend — heap CSR, shared memory, memory-mapped raw
   snapshot, compressed snapshot — through both the kernel and native
   engines, including ``limit``- and ``deadline``-interrupted runs, and
   every payload must match the heap reference byte for byte.
2. **<= 0.6x bytes/edge under compression.**  The gap/varint block codec
   must store the graph (snapshot file, forward + reverse adjacency) in at
   most 60 % of the raw CSR snapshot's bytes per edge.
3. **>= 20x faster cold attach.**  Opening a raw snapshot with the mmap
   store must be at least 20x faster than materialising the same graph
   from its ``.npz`` image, because attachment maps pages instead of
   copying arrays.

``--quick`` is the CI smoke mode: a scaled-down graph, the full payload
equivalence sweep, the compression-ratio check, and a regression gate —
payload divergence, a ratio above 0.6, or a kernel enumeration slowdown
(each store timed against the heap *in the same run*, so host speed cancels
out) above its per-store ceiling fails the run.  The committed baseline
(``results/BENCH_storage.json``) can only *widen* a ceiling, never tighten
it below the floor — shared CI runners are too variable for an absolute
cross-machine time comparison to hold.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_storage.py [--quick]``
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.api import Database
from repro.graph.generators import erdos_renyi
from repro.graph.io import _load_npz, _save_npz
from repro.graph.snapshot import load_snapshot, save_snapshot

RESULTS_DIR = Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_storage.json"

#: Repetitions per timing measurement; the minimum is reported.
REPEATS = 3

#: Committed headline claims.
MAX_COMPRESSED_RATIO = 0.6
REQUIRED_ATTACH_SPEEDUP = 20.0

#: Quick-mode ceilings on each store's kernel enumeration slowdown relative
#: to the heap measured in the *same* run: the flat stores must stay close
#: to the heap, the compressed store may pay a bounded decode tax.  Both
#: sides of the ratio come from the same host, so runner speed cancels out.
QUICK_SLOWDOWN_CEILINGS = {"shared_memory": 1.5, "mmap": 1.5, "compressed": 3.0}

#: A committed baseline slowdown (measured on a different machine) may only
#: *widen* a ceiling by this factor — e.g. to admit a legitimately slower
#: accepted trade-off — never tighten it below the floor above, which would
#: make the gate flake on variable shared runners.
QUICK_REGRESSION_TOLERANCE = 1.2

#: The storage claims are degree-sensitive (gap coding pays off once rows
#: are long enough to amortise the per-block anchors), so the tracked graph
#: mirrors the dense end of the paper's datasets.
GRAPH_SPEC = {"n": 20_000, "avg_out_degree": 16.0, "seed": 11}
QUICK_SPEC = {"n": 2_000, "avg_out_degree": 12.0, "seed": 11}

#: Storage backends measured against the heap reference.
STORES = ("shared_memory", "mmap", "compressed")


def _build_files(spec: Dict, directory: Path) -> Dict:
    graph = erdos_renyi(spec["n"], spec["avg_out_degree"], seed=spec["seed"])
    return {
        "graph": graph,
        "npz": _save_npz(graph, directory / "graph.npz"),
        "raw": save_snapshot(graph, directory / "graph.rsnap"),
        "compressed": save_snapshot(graph, directory / "graph.crsnap", codec="compressed"),
    }


def _open(store: str, files: Dict):
    if store == "heap":
        return files["graph"]
    source = files["compressed"] if store == "compressed" else files["raw"]
    return load_snapshot(source, store=store)


def _close(store: str, graph) -> None:
    if store != "heap":
        graph.close_store(unlink=store == "shared_memory")


# --------------------------------------------------------------------- #
# payload equivalence across stores and engines
# --------------------------------------------------------------------- #
def _workload(graph, count: int = 10) -> List:
    rng = np.random.default_rng(2021)
    queries = []
    while len(queries) < count:
        s, t = (int(v) for v in rng.choice(graph.num_vertices, size=2, replace=False))
        queries.append((s, t, int(rng.integers(3, 6))))
    return queries


def check_equivalence(files: Dict) -> Dict[str, object]:
    """Evaluate one workload on every store; payloads must match the heap."""
    heap = files["graph"]
    queries = _workload(heap)
    interrupted = [
        (queries[0], {"limit": 5}),
        (queries[1], {"deadline": 0.0}),
    ]

    def evaluate(graph, engine):
        with Database(graph) as db:
            payload = db.batch(queries, engine=engine).payload()
            partial = [
                db.query(q, engine=engine, **options).result().paths
                for q, options in interrupted
            ]
        return payload, partial

    engines = ("kernel", "native")
    reference = {engine: evaluate(heap, engine) for engine in engines}
    divergent = []
    for store in STORES:
        graph = _open(store, files)
        try:
            for engine in engines:
                if evaluate(graph, engine) != reference[engine]:
                    divergent.append(f"{store}/{engine}")
        finally:
            _close(store, graph)
    total = sum(entry["count"] for entry in reference["kernel"][0])
    return {
        "stores": ["heap", *STORES],
        "engines": list(engines),
        "queries": len(queries),
        "interrupted_runs": ["limit=5", "deadline=0.0"],
        "total_paths": total,
        "byte_identical": not divergent,
        "divergent": divergent,
    }


# --------------------------------------------------------------------- #
# storage footprint
# --------------------------------------------------------------------- #
def measure_footprint(files: Dict) -> Dict[str, object]:
    graph = files["graph"]
    num_edges = graph.num_edges
    raw_bytes = files["raw"].stat().st_size
    compressed_bytes = files["compressed"].stat().st_size
    packed = _open("compressed", files)
    try:
        usage = packed.memory_usage()
        in_memory_ratio = float(usage["compression_ratio"])
    finally:
        _close("compressed", packed)
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": num_edges,
        "npz_bytes": files["npz"].stat().st_size,
        "raw_snapshot_bytes": raw_bytes,
        "compressed_snapshot_bytes": compressed_bytes,
        "raw_bytes_per_edge": round(raw_bytes / num_edges, 3),
        "compressed_bytes_per_edge": round(compressed_bytes / num_edges, 3),
        "compressed_ratio": round(compressed_bytes / raw_bytes, 3),
        "in_memory_compressed_ratio": round(in_memory_ratio, 3),
        "max_ratio_claim": MAX_COMPRESSED_RATIO,
    }


# --------------------------------------------------------------------- #
# cold attach
# --------------------------------------------------------------------- #
def _best_time(action, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            opened = action()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        opened.close_store()
        best = min(best, elapsed)
    return best


def measure_cold_attach(files: Dict, repeats: int = REPEATS) -> Dict[str, object]:
    """Attach latency per backend (page cache warm: copy cost vs map cost)."""
    npz_path, raw_path, compressed_path = files["npz"], files["raw"], files["compressed"]
    npz_heap = _best_time(lambda: _load_npz(npz_path), repeats)
    mmap_attach = _best_time(lambda: load_snapshot(raw_path, store="mmap"), repeats)
    compressed_attach = _best_time(
        lambda: load_snapshot(compressed_path, store="compressed"), repeats
    )
    return {
        "npz_heap_ms": round(npz_heap * 1e3, 3),
        "mmap_attach_ms": round(mmap_attach * 1e3, 3),
        "compressed_attach_ms": round(compressed_attach * 1e3, 3),
        "mmap_speedup_vs_npz": round(npz_heap / max(mmap_attach, 1e-9), 1),
        "required_speedup": REQUIRED_ATTACH_SPEEDUP,
    }


# --------------------------------------------------------------------- #
# enumeration overhead
# --------------------------------------------------------------------- #
def measure_enumeration(files: Dict, repeats: int = REPEATS) -> List[Dict]:
    """Kernel-engine batch time per store, as a slowdown over the heap."""
    queries = _workload(files["graph"])

    def batch_seconds(graph) -> float:
        best = float("inf")
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                with Database(graph) as db:
                    db.batch(queries, engine="kernel", store_paths=True).results()
                best = min(best, time.perf_counter() - started)
            finally:
                gc.enable()
        return best

    heap_seconds = batch_seconds(files["graph"])
    rows = [
        {
            "store": "heap",
            "batch_ms": round(heap_seconds * 1e3, 3),
            "slowdown": 1.0,
        }
    ]
    for store in STORES:
        graph = _open(store, files)
        try:
            seconds = batch_seconds(graph)
        finally:
            _close(store, graph)
        rows.append(
            {
                "store": store,
                "batch_ms": round(seconds * 1e3, 3),
                "slowdown": round(seconds / max(heap_seconds, 1e-9), 3),
            }
        )
    return rows


def _print_enumeration(rows: List[Dict]) -> None:
    header = f"{'store':<14} {'batch':>12} {'slowdown':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['store']:<14} {row['batch_ms']:>10.1f}ms {row['slowdown']:>9.2f}x")


def _baseline_slowdowns() -> Optional[Dict[str, float]]:
    if not RESULT_FILE.exists():
        return None
    try:
        committed = json.loads(RESULT_FILE.read_text())
        return {row["store"]: row["slowdown"] for row in committed["quick"]["enumeration"]}
    except (KeyError, ValueError, TypeError):
        return None


# --------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------- #
def run_quick() -> int:
    with tempfile.TemporaryDirectory(prefix="bench_storage_") as tmp:
        files = _build_files(QUICK_SPEC, Path(tmp))
        print("payload equivalence sweep (heap / shm / mmap / compressed) ...")
        equivalence = check_equivalence(files)
        if not equivalence["byte_identical"]:
            print(f"FAIL: stores diverged from the heap reference: "
                  f"{equivalence['divergent']}")
            return 1
        print(f"byte-identical across {equivalence['stores']} x "
              f"{equivalence['engines']} ({equivalence['queries']} queries, "
              f"{equivalence['total_paths']} paths, interrupted runs included)")

        footprint = measure_footprint(files)
        print(f"compressed snapshot at {footprint['compressed_ratio']:.2f}x "
              f"the raw bytes/edge ({footprint['compressed_bytes_per_edge']:.2f} "
              f"vs {footprint['raw_bytes_per_edge']:.2f})")
        if footprint["compressed_ratio"] > MAX_COMPRESSED_RATIO:
            print(f"FAIL: compression ratio above the {MAX_COMPRESSED_RATIO:.2f} claim")
            return 1

        rows = measure_enumeration(files, repeats=5)
        _print_enumeration(rows)
        baseline = _baseline_slowdowns()
        failed = False
        for row in rows:
            if row["store"] == "heap":
                continue
            ceiling = QUICK_SLOWDOWN_CEILINGS[row["store"]]
            if baseline and row["store"] in baseline:
                ceiling = max(ceiling, baseline[row["store"]] * QUICK_REGRESSION_TOLERANCE)
            if row["slowdown"] > ceiling:
                print(f"FAIL: {row['store']} kernel slowdown {row['slowdown']:.2f}x "
                      f"above the regression ceiling {ceiling:.2f}x")
                failed = True
        if not failed:
            print("kernel slowdowns within the regression budget")
        return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: equivalence + regression gates, no result file",
    )
    args = parser.parse_args()
    if args.quick:
        return run_quick()

    with tempfile.TemporaryDirectory(prefix="bench_storage_") as tmp:
        files = _build_files(GRAPH_SPEC, Path(tmp))
        print("payload equivalence sweep (heap / shm / mmap / compressed) ...")
        equivalence = check_equivalence(files)
        assert equivalence["byte_identical"], equivalence
        print(f"byte-identical across {equivalence['stores']} x "
              f"{equivalence['engines']} ({equivalence['queries']} queries, "
              f"{equivalence['total_paths']} paths)")

        footprint = measure_footprint(files)
        attach = measure_cold_attach(files, repeats=max(REPEATS, 5))
        rows = measure_enumeration(files)
        _print_enumeration(rows)

        with tempfile.TemporaryDirectory(prefix="bench_storage_q_") as quick_tmp:
            quick_files = _build_files(QUICK_SPEC, Path(quick_tmp))
            quick_rows = measure_enumeration(quick_files, repeats=5)

    meets_ratio = footprint["compressed_ratio"] <= MAX_COMPRESSED_RATIO
    meets_attach = attach["mmap_speedup_vs_npz"] >= REQUIRED_ATTACH_SPEEDUP
    payload = {
        "benchmark": "snapshot_storage_backends",
        "claim": f"compressed <= {MAX_COMPRESSED_RATIO:.1f}x raw bytes/edge, "
                 f"mmap attach >= {REQUIRED_ATTACH_SPEEDUP:.0f}x faster than "
                 ".npz heap load, byte-identical payloads",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "settings": {
            "graph": GRAPH_SPEC,
            "repeats": REPEATS,
            "timing": "best-of-N wall clock; attach measured page-cache warm",
        },
        "equivalence": equivalence,
        "footprint": footprint,
        "cold_attach": attach,
        "enumeration": rows,
        "summary": {
            "compressed_ratio": footprint["compressed_ratio"],
            "mmap_attach_speedup": attach["mmap_speedup_vs_npz"],
            "meets_claims": bool(meets_ratio and meets_attach),
        },
        "quick": {
            "graph": QUICK_SPEC,
            "regression_tolerance": QUICK_REGRESSION_TOLERANCE,
            "enumeration": quick_rows,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULT_FILE}")
    print(f"compressed/raw bytes-per-edge ratio: {footprint['compressed_ratio']:.3f} "
          f"(claim: <= {MAX_COMPRESSED_RATIO:.1f})")
    print(f"mmap attach speedup vs .npz heap load: "
          f"{attach['mmap_speedup_vs_npz']:.1f}x "
          f"(claim: >= {REQUIRED_ATTACH_SPEEDUP:.0f}x)")
    return 0 if (meets_ratio and meets_attach) else 1


if __name__ == "__main__":
    raise SystemExit(main())
