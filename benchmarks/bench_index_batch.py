"""Micro-benchmark: CSR index + batch execution vs. the dict-era seed.

Measures, on the Figure 13-style workload (hard V' x V' queries swept over
``k``), the combined index-build + enumeration wall clock of

* ``legacy``  — a pinned copy of the seed's per-vertex dict/list
  implementation of Algorithm 3 plus its recursive DFS (the code this PR
  replaced; kept here verbatim as the comparison baseline);
* ``csr``     — the vectorised CSR ``LightWeightIndex`` plus the
  flat-array DFS (:func:`repro.core.dfs.run_idx_dfs`);
* ``batch``   — the same CSR engine driven through
  :class:`~repro.core.engine.BatchExecutor` on a target-centric workload,
  where repeated targets share reverse-BFS distance arrays.

Results are printed and persisted to ``benchmarks/results/
BENCH_index_batch.json`` so regressions are visible in review diffs.

Run directly:  ``PYTHONPATH=src python benchmarks/bench_index_batch.py``
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.dfs import run_idx_dfs
from repro.core.engine import BatchExecutor, PathEnum
from repro.core.index import LightWeightIndex
from repro.core.listener import ResultCollector, RunConfig
from repro.core.result import EnumerationStats
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import (
    QuerySetting,
    generate_query_set,
    generate_target_centric_set,
)

RESULTS_DIR = Path(__file__).parent / "results"
DATASET = "gg"
K_SWEEP = (3, 4, 5, 6)
QUERIES_PER_K = 6
BATCH_QUERIES = 24
BATCH_TARGETS = 4
BATCH_K = (3, 4)
REPEATS = 5
SEED = 2021


# --------------------------------------------------------------------- #
# pinned legacy implementation (the seed's Algorithm 3 + Algorithm 4)
# --------------------------------------------------------------------- #
def legacy_build(graph, query):
    """Per-vertex dict/list index construction, as in the seed."""
    s, t, k = query.source, query.target, query.k
    ds = bfs_distances_bounded(graph, s, cutoff=k, no_expand=t)
    dt = bfs_distances_bounded(graph, t, cutoff=k, reverse=True, no_expand=s)
    in_x = (ds != UNREACHABLE) & (dt != UNREACHABLE) & (ds + dt <= k)
    members = np.flatnonzero(in_x)
    neighbors: Dict[int, List[int]] = {}
    ends: Dict[int, List[int]] = {}
    for v in members:
        v = int(v)
        if v == t:
            continue
        budget = k - int(ds[v]) - 1
        if budget < 0:
            continue
        collected: List[int] = []
        for v_next in graph.neighbors(v):
            v_next = int(v_next)
            if v_next == s:
                continue
            d_next = int(dt[v_next])
            if d_next == UNREACHABLE or d_next > budget:
                continue
            collected.append(v_next)
        collected.sort(key=lambda w: int(dt[w]))
        neighbors[v] = collected
        end_positions = [0] * (k + 1)
        position = 0
        for b in range(k + 1):
            while position < len(collected) and int(dt[collected[position]]) <= b:
                position += 1
            end_positions[b] = position
        ends[v] = end_positions
    if bool(in_x[t]):
        neighbors[t] = [t]
        ends[t] = [1] * (k + 1)
    return s, t, k, ds, neighbors, ends


def legacy_enumerate(built, collector, stats, deadline=None) -> int:
    """The seed's recursive index DFS, bookkeeping included (Algorithm 4)."""
    s, t, k, ds, neighbors, ends = built
    if int(ds[t]) == UNREACHABLE or int(ds[t]) > k:
        return 0
    path = [s]
    on_path = {s}

    def search() -> int:
        if deadline is not None:
            deadline.check()
        v = path[-1]
        if v == t:
            collector.emit(path)
            return 1
        budget = k - len(path)
        end_positions = ends.get(v)
        if end_positions is None or budget < 0:
            return 0
        candidates = neighbors[v][: end_positions[budget]]
        stats.edges_accessed += len(candidates)
        found = 0
        for v_next in candidates:
            if v_next in on_path:
                continue
            stats.partial_results_generated += 1
            path.append(v_next)
            on_path.add(v_next)
            try:
                sub_found = search()
            finally:
                path.pop()
                on_path.discard(v_next)
            if sub_found == 0:
                stats.invalid_partial_results += 1
            found += sub_found
        return found

    return search()


# --------------------------------------------------------------------- #
# measurement
# --------------------------------------------------------------------- #
def _time(callable_, repeats: int = REPEATS) -> float:
    """Best-of-N wall clock in seconds (minimum damps scheduler noise)."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - started)
    return min(samples)


def _time_pair(first, second, repeats: int = REPEATS):
    """Best-of-N for two contenders with interleaved samples.

    Alternating A/B within each round cancels the slow machine-load drift
    that back-to-back batches of samples would attribute to one side.
    """
    first_samples, second_samples = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        first()
        first_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        second()
        second_samples.append(time.perf_counter() - started)
    return min(first_samples), min(second_samples)


def run_k_sweep(graph, workloads) -> Dict[str, Dict[str, float]]:
    per_k: Dict[str, Dict[str, float]] = {}
    for k, workload in workloads.items():
        queries = list(workload)

        def run_legacy():
            total = 0
            for query in queries:
                stats = EnumerationStats()
                collector = ResultCollector(store_paths=False)
                total += legacy_enumerate(legacy_build(graph, query), collector, stats)
            return total

        def run_csr():
            total = 0
            for query in queries:
                index = LightWeightIndex.build(graph, query)
                collector = ResultCollector(store_paths=False)
                total += run_idx_dfs(index, collector, stats=EnumerationStats())
            return total

        counts_legacy = run_legacy()
        counts_csr = run_csr()
        assert counts_legacy == counts_csr, (k, counts_legacy, counts_csr)

        legacy_seconds, csr_seconds = _time_pair(run_legacy, run_csr)
        per_k[str(k)] = {
            "queries": len(queries),
            "paths": counts_csr,
            "legacy_ms": round(legacy_seconds * 1e3, 3),
            "csr_ms": round(csr_seconds * 1e3, 3),
            "speedup": round(legacy_seconds / csr_seconds, 2),
        }
        print(
            f"k={k}: legacy {legacy_seconds * 1e3:8.2f} ms | "
            f"csr {csr_seconds * 1e3:8.2f} ms | "
            f"x{legacy_seconds / csr_seconds:.2f} ({counts_csr} paths)"
        )
    return per_k


def run_batch_comparison(graph, k: int) -> Dict[str, object]:
    """Sequential PathEnum vs. BatchExecutor on a target-centric workload.

    The reverse-BFS share of a query shrinks as ``k`` grows (enumeration
    explodes), so the batch win is reported for the preprocessing-bound end
    of the Figure 13 sweep — the regime production point-lookup traffic
    lives in.
    """
    workload = generate_target_centric_set(
        graph,
        count=BATCH_QUERIES,
        k=k,
        num_targets=BATCH_TARGETS,
        seed=SEED,
        graph_name=DATASET,
    )
    queries = list(workload)
    config = RunConfig(store_paths=False)
    engine = PathEnum()

    def run_sequential():
        return sum(engine.run(graph, query, config).count for query in queries)

    sequential_count = run_sequential()
    batch_result = BatchExecutor(graph).run(queries, config)
    assert sequential_count == batch_result.total_paths

    sequential_seconds, batch_seconds = _time_pair(
        run_sequential, lambda: BatchExecutor(graph).run(queries, config)
    )
    stats = BatchExecutor(graph).run(queries, config).stats
    print(
        f"batch k={k} ({BATCH_QUERIES} queries, {BATCH_TARGETS} targets): "
        f"sequential {sequential_seconds * 1e3:8.2f} ms | "
        f"batched {batch_seconds * 1e3:8.2f} ms | "
        f"x{sequential_seconds / batch_seconds:.2f} "
        f"({stats.reverse_bfs_runs} reverse BFS for {stats.queries_run} queries)"
    )
    return {
        "queries": BATCH_QUERIES,
        "distinct_targets": len(workload.unique_targets()),
        "k": k,
        "paths": sequential_count,
        "sequential_ms": round(sequential_seconds * 1e3, 3),
        "batch_ms": round(batch_seconds * 1e3, 3),
        "speedup": round(sequential_seconds / batch_seconds, 2),
        "reverse_bfs_runs": stats.reverse_bfs_runs,
        "bfs_cache_hits": stats.bfs_cache_hits,
    }


def main() -> int:
    graph = load_dataset(DATASET)
    workloads = {
        k: generate_query_set(
            graph,
            count=QUERIES_PER_K,
            k=k,
            setting=QuerySetting.HIGH_HIGH,
            seed=SEED,
            graph_name=DATASET,
        )
        for k in K_SWEEP
    }
    print(f"dataset {DATASET}: |V|={graph.num_vertices}, |E|={graph.num_edges}")
    per_k = run_k_sweep(graph, workloads)
    batch = {str(k): run_batch_comparison(graph, k) for k in BATCH_K}

    speedups = [row["speedup"] for row in per_k.values()]
    payload = {
        "benchmark": "index_build_plus_enumeration",
        "dataset": DATASET,
        "workload": {
            "setting": "V'xV'",
            "queries_per_k": QUERIES_PER_K,
            "k_sweep": list(K_SWEEP),
            "seed": SEED,
            "repeats": REPEATS,
            "timing": "best-of-N wall clock",
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "per_k": per_k,
        "batch": batch,
        "summary": {
            "median_index_speedup": round(statistics.median(speedups), 2),
            "min_index_speedup": min(speedups),
            "batch_speedups": {k: row["speedup"] for k, row in batch.items()},
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_index_batch.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
