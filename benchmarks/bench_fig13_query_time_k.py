"""Figure 13: mean query time of all five algorithms with k varied.

Expected shape (paper): all curves grow with k; the index-based algorithms
stay one to two orders of magnitude below BC-DFS / BC-JOIN on the hard graph
and PathEnum tracks the better of IDX-DFS / IDX-JOIN.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.baselines.registry import PAPER_ALGORITHMS
from repro.bench.comparison import sweep_k
from repro.bench.reporting import format_series


def _run_fig13():
    per_dataset = {}
    for name in REPRESENTATIVE_DATASETS:
        sweep = sweep_k(
            dataset(name), workload(name), PAPER_ALGORITHMS, ks=K_SWEEP,
            settings=BENCH_SETTINGS,
        )
        series = {
            algorithm: {k: sweep[k][algorithm].mean_query_ms for k in K_SWEEP}
            for algorithm in PAPER_ALGORITHMS
        }
        per_dataset[name] = series
    return per_dataset


def test_fig13_query_time_vs_k(benchmark):
    per_dataset = run_once(benchmark, _run_fig13)
    text_blocks = []
    for name, series in per_dataset.items():
        text_blocks.append(
            format_series(series, x_label="k", title=f"Figure 13 ({name}): query time (ms)")
        )
    persist("fig13_query_time_k", "\n\n".join(text_blocks))
    # Shape check: on the hard graph IDX-DFS is never meaningfully slower
    # than BC-DFS at any k (at the top of the sweep both can saturate the
    # time limit, so a small tolerance absorbs measurement noise).
    ep_series = per_dataset["ep"]
    for k in K_SWEEP:
        assert ep_series["IDX-DFS"][k] <= 1.10 * ep_series["BC-DFS"][k]
