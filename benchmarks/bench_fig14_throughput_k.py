"""Figure 14: throughput (results per second) of all five algorithms with k varied.

Expected shape (paper): the index-based algorithms sustain a throughput that
keeps rising (or stays flat) with k because preprocessing amortises over more
results, while BC-DFS's throughput collapses as its per-step pruning cost
grows.
"""

from __future__ import annotations

from _bench_common import (
    BENCH_SETTINGS,
    K_SWEEP,
    REPRESENTATIVE_DATASETS,
    dataset,
    persist,
    run_once,
    workload,
)

from repro.baselines.registry import PAPER_ALGORITHMS
from repro.bench.comparison import sweep_k
from repro.bench.reporting import format_series


def _run_fig14():
    per_dataset = {}
    for name in REPRESENTATIVE_DATASETS:
        sweep = sweep_k(
            dataset(name), workload(name), PAPER_ALGORITHMS, ks=K_SWEEP,
            settings=BENCH_SETTINGS,
        )
        per_dataset[name] = {
            algorithm: {k: sweep[k][algorithm].mean_throughput for k in K_SWEEP}
            for algorithm in PAPER_ALGORITHMS
        }
    return per_dataset


def test_fig14_throughput_vs_k(benchmark):
    per_dataset = run_once(benchmark, _run_fig14)
    text_blocks = [
        format_series(series, x_label="k", title=f"Figure 14 ({name}): throughput (results/s)")
        for name, series in per_dataset.items()
    ]
    persist("fig14_throughput_k", "\n\n".join(text_blocks))
    # Shape check: IDX-DFS reaches a higher throughput than BC-DFS at the
    # largest k on the hard graph.
    top = max(K_SWEEP)
    assert per_dataset["ep"]["IDX-DFS"][top] >= per_dataset["ep"]["BC-DFS"][top]
