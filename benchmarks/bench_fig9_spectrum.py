"""Figure 9: spectrum analysis of the join-plan space on one hard query.

Every plan in PathEnum's search space — the left-deep index DFS and the
bushy join at each cut position — is timed for a single k = 6 query on each
representative graph, together with the optimizer's own cost and PathEnum's
end-to-end time.  Expected shape (paper): on the long-running graph the
optimization time is negligible and the chosen plan is close to the best
measured one; on the short-running graph PathEnum's preliminary estimator
skips the optimization entirely, so its total is below index + optimization
+ best plan.
"""

from __future__ import annotations

from _bench_common import BENCH_SETTINGS, REPRESENTATIVE_DATASETS, dataset, persist, run_once, workload

from repro.bench.reporting import format_table
from repro.bench.spectrum import spectrum_analysis

SPECTRUM_K = 6


def _run_fig9():
    rows = []
    for name in REPRESENTATIVE_DATASETS:
        query = workload(name, k=SPECTRUM_K).queries[0]
        analysis = spectrum_analysis(
            dataset(name), query, time_limit_seconds=BENCH_SETTINGS.time_limit_seconds
        )
        for point in analysis.points:
            rows.append({"dataset": name, **point.as_row()})
        rows.append(
            {
                "dataset": name,
                "plan": "optimization-only",
                "cut": None,
                "enumeration_ms": analysis.optimization_ms,
                "results": 0,
                "timed_out": False,
            }
        )
        rows.append(
            {
                "dataset": name,
                "plan": f"PathEnum ({analysis.pathenum_plan})",
                "cut": None,
                "enumeration_ms": analysis.pathenum_total_ms,
                "results": 0,
                "timed_out": False,
            }
        )
    return rows


def test_fig9_spectrum_analysis(benchmark):
    rows = run_once(benchmark, _run_fig9)
    persist(
        "fig9_spectrum",
        format_table(rows, title=f"Figure 9: join-plan spectrum (k={SPECTRUM_K})"),
    )
    plans = {row["plan"] for row in rows}
    assert "left-deep" in plans and "bushy" in plans
