"""Money-laundering flow detection (motivating application 1 of the paper).

Layering schemes move illegal funds from a source account to a destination
account through short chains of intermediaries — the "red flag" the FATF
report and the paper describe.  This example builds a synthetic bank
transaction graph with per-edge risk scores and channels, then uses the
constraint extensions of Appendix E to answer three investigator questions:

1. which short flows connect the two suspect accounts at all (plain HcPE);
2. which of them accumulate a total risk above a threshold
   (:class:`AccumulativeConstraint`, Algorithm 7);
3. which of them use only high-risk channels
   (:class:`PredicateConstraint`).

Run with:

    python examples/money_laundering.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AccumulativeConstraint,
    Database,
    GraphBuilder,
    PredicateConstraint,
    Q,
)

#: Hop constraint: the paper notes laundering flows tend to be short
#: (two to four hops) because every extra hop costs the fraudsters money.
MAX_HOPS = 4

#: Channels considered risky by the investigator.
RISKY_CHANNELS = ("wire", "crypto", "shell-invoice")


def build_bank_graph(seed: int = 23):
    """A synthetic bank: accounts as vertices, transfers with risk/channel."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()
    num_accounts = 300
    channels = ("card", "ach", "wire", "crypto", "shell-invoice")
    # Background activity.
    for _ in range(1500):
        src = int(rng.integers(num_accounts))
        dst = int(rng.integers(num_accounts))
        if src == dst:
            continue
        channel = str(rng.choice(channels, p=[0.4, 0.3, 0.15, 0.1, 0.05]))
        risk = float(rng.beta(2, 8)) if channel in ("card", "ach") else float(rng.beta(5, 3))
        builder.add_edge(f"acct:{src}", f"acct:{dst}", weight=round(risk, 3), label=channel)
    # A deliberate layering chain from the source to the destination account.
    chain = ["acct:SOURCE", "acct:77", "acct:142", "acct:DEST"]
    for hop, (src, dst) in enumerate(zip(chain, chain[1:])):
        builder.add_edge(src, dst, weight=0.9 - 0.05 * hop, label="wire")
    builder.add_edge("acct:SOURCE", "acct:201", weight=0.05, label="card")
    builder.add_edge("acct:201", "acct:DEST", weight=0.04, label="card")
    return builder.build()


def describe(graph, paths, *, limit: int = 8) -> None:
    for path in sorted(paths, key=len)[:limit]:
        names = [str(graph.to_external(v)) for v in path]
        total_risk = sum(
            graph.edge_weight(u, v) for u, v in zip(path, path[1:])
        )
        channels = [graph.edge_label(u, v, default="?") for u, v in zip(path, path[1:])]
        print(f"   {' -> '.join(names)}   (risk {total_risk:.2f}, channels {channels})")
    if len(paths) > limit:
        print(f"   ... and {len(paths) - limit} more")


def main() -> None:
    graph = build_bank_graph()
    base = Q("acct:SOURCE", "acct:DEST", MAX_HOPS)
    print(f"bank graph: {graph.num_vertices} accounts, {graph.num_edges} transfers")
    print(f"investigating flows acct:SOURCE -> acct:DEST within {MAX_HOPS} hops\n")

    with Database(graph) as db:
        # 1. All short flows between the two accounts.
        all_flows = db.query(base, external=True).result()
        print(f"1. {all_flows.count} flows connect the two accounts "
              f"(query time {all_flows.query_millis:.2f} ms)")
        describe(graph, all_flows.paths)

        # 2. Flows whose accumulated risk crosses the reporting threshold
        #    (constrained specs run on the inline backend).
        risk_constraint = AccumulativeConstraint(graph, accept=lambda total: total >= 2.0)
        risky = db.query(base.where(risk_constraint), external=True).result()
        print(f"\n2. {risky.count} flows accumulate a total risk of at least 2.0")
        describe(graph, risky.paths)

        # 3. Flows that only ever use risky channels.
        channel_constraint = PredicateConstraint(
            lambda u, v, weight, label: label in RISKY_CHANNELS, graph
        )
        channel_only = db.query(base.where(channel_constraint), external=True).result()
        print(f"\n3. {channel_only.count} flows use risky channels exclusively")
        describe(graph, channel_only.paths)


if __name__ == "__main__":
    main()
