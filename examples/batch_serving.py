"""Batch execution: serving many queries against shared targets.

A payments team monitors a handful of suspicious hub accounts.  Every few
seconds a fresh batch of source accounts must be checked for short paths
into those hubs — the target-sharing traffic shape the batch layer is built
for.  One reverse BFS per (hub, k) is paid once and reused across the whole
batch; results are identical to one-at-a-time runs.

Everything goes through the :class:`repro.Database` façade: the same
``batch()`` call runs inline here, and switching to a thread pool
(``backend="threads"``), worker processes (``backend="processes"``) or a
running ``repro serve`` instance (``Database("host:port")``) changes one
argument, not the workload.

Run with:  PYTHONPATH=src python examples/batch_serving.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Database, Q
from repro.graph.generators import power_law_graph
from repro.workloads.queries import generate_target_centric_set


def main() -> None:
    # A scale-free transaction network: heavy hubs, long tail.
    graph = power_law_graph(2000, 6.0, exponent=2.1, seed=13)

    # 40 queries probing 4 hub accounts within 4 hops.
    workload = generate_target_centric_set(
        graph, count=40, k=4, num_targets=4, seed=7, graph_name="transactions"
    )
    print(f"workload: {len(workload)} queries, "
          f"{len(workload.unique_targets())} distinct targets")

    with Database(graph) as db:
        stream = db.batch(workload.to_specs(store_paths=False))
        results = stream.results()
        stats = stream.stats()

        throughput = stats.total_paths / max(stats.wall_seconds, 1e-9)
        print(f"paths found:       {stats.total_paths}")
        print(f"batch wall time:   {stats.wall_seconds * 1e3:.1f} ms "
              f"({throughput:,.0f} paths/s)")
        print(f"reverse BFS runs:  {stats.reverse_bfs_runs} "
              f"(cache hit rate {stats.hit_rate:.0%})")

        # Spot-check one query against a fresh single-query run.
        probe = workload.queries[0]
        direct = db.query(Q(probe.source, probe.target, probe.k).count_only()).result()
        assert direct.count == results[0].count
        print(f"spot check q({probe.source}, {probe.target}, {probe.k}): "
              f"{direct.count} paths either way")


if __name__ == "__main__":
    main()
