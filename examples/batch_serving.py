"""Batch execution: serving many queries against shared targets.

A payments team monitors a handful of suspicious hub accounts.  Every few
seconds a fresh batch of source accounts must be checked for short paths
into those hubs — the target-sharing traffic shape `BatchExecutor` is built
for.  One reverse BFS per (hub, k) is paid once and reused across the whole
batch; results are identical to one-at-a-time runs.

Run with:  PYTHONPATH=src python examples/batch_serving.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BatchExecutor, PathEnum, Query, RunConfig
from repro.graph.generators import power_law_graph
from repro.workloads.queries import generate_target_centric_set


def main() -> None:
    # A scale-free transaction network: heavy hubs, long tail.
    graph = power_law_graph(2000, 6.0, exponent=2.1, seed=13)

    # 40 queries probing 4 hub accounts within 4 hops.
    workload = generate_target_centric_set(
        graph, count=40, k=4, num_targets=4, seed=7, graph_name="transactions"
    )
    print(f"workload: {len(workload)} queries, "
          f"{len(workload.unique_targets())} distinct targets")

    executor = BatchExecutor(graph)
    batch = executor.run(list(workload), RunConfig(store_paths=False))

    stats = batch.stats
    print(f"paths found:       {batch.total_paths}")
    print(f"batch wall time:   {stats.wall_seconds * 1e3:.1f} ms "
          f"({batch.throughput:,.0f} paths/s)")
    print(f"reverse BFS runs:  {stats.reverse_bfs_runs} "
          f"(cache hit rate {stats.hit_rate:.0%})")

    # Spot-check one query against the sequential engine.
    probe = workload.queries[0]
    direct = PathEnum().run(graph, Query(probe.source, probe.target, probe.k))
    assert direct.count == batch.results[0].count
    print(f"spot check q({probe.source}, {probe.target}, {probe.k}): "
          f"{direct.count} paths either way")


if __name__ == "__main__":
    main()
