"""Compare PathEnum against the baselines on a synthetic workload.

A miniature version of the paper's Table 3: generates a hard (hub-to-hub)
query set on one of the registry datasets, evaluates it with every
registered algorithm and prints query time, throughput and response time.
Useful as a template for benchmarking the library on your own graphs.

Run with:

    python examples/algorithm_comparison.py [dataset] [k]
"""

from __future__ import annotations

import sys

from repro.baselines.registry import PAPER_ALGORITHMS
from repro.bench import BenchmarkSettings, overall_comparison, format_table
from repro.workloads import QuerySetting, generate_query_set, load_dataset


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "gg"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    graph = load_dataset(dataset_name)
    print(f"dataset {dataset_name}: {graph.num_vertices} vertices, {graph.num_edges} edges")
    workload = generate_query_set(
        graph, count=10, k=k, setting=QuerySetting.HIGH_HIGH, seed=0, graph_name=dataset_name
    )
    print(f"workload: {len(workload)} hub-to-hub queries, k={k}\n")

    settings = BenchmarkSettings(time_limit_seconds=2.0, response_k=100, store_paths=False)
    metrics = overall_comparison(graph, workload, PAPER_ALGORITHMS, settings=settings)
    rows = [metric.as_row() for metric in metrics.values()]
    print(format_table(rows, title=f"Overall comparison on {dataset_name} (k={k})"))

    fastest = min(metrics.values(), key=lambda m: m.mean_query_ms)
    slowest = max(metrics.values(), key=lambda m: m.mean_query_ms)
    speedup = slowest.mean_query_ms / max(fastest.mean_query_ms, 1e-9)
    print(f"\n{fastest.algorithm} is {speedup:.1f}x faster than {slowest.algorithm} "
          f"on this workload")


if __name__ == "__main__":
    main()
