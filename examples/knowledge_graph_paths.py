"""Knowledge-graph relation paths (motivating application 3 of the paper).

Knowledge-graph completion models score a candidate relation between two
entities by the paths that already connect them; short paths matter most,
and applications often restrict the admissible relation sequences (e.g.
``write -> mention``).  This example builds a small bibliographic knowledge
graph and uses PathEnum to extract:

1. all hop-constrained paths between an author and a topic (the features a
   completion model would consume);
2. only the paths whose relation sequence matches a required pattern
   (:class:`AutomatonConstraint`, Algorithm 8);
3. a per-entity-pair path-count feature table for a set of candidate pairs.

Run with:

    python examples/knowledge_graph_paths.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    AutomatonConstraint,
    Database,
    GraphBuilder,
    Q,
    SequenceAutomaton,
)

FACTS = [
    # author ----- writes ----> paper ----- mentions ----> topic
    ("ada", "paper:indexes", "write"),
    ("ada", "paper:joins", "write"),
    ("grace", "paper:joins", "write"),
    ("grace", "paper:compilers", "write"),
    ("alan", "paper:logic", "write"),
    ("paper:indexes", "topic:databases", "mention"),
    ("paper:joins", "topic:databases", "mention"),
    ("paper:joins", "topic:optimization", "mention"),
    ("paper:compilers", "topic:languages", "mention"),
    ("paper:logic", "topic:computability", "mention"),
    # citations between papers
    ("paper:joins", "paper:indexes", "cite"),
    ("paper:compilers", "paper:logic", "cite"),
    ("paper:indexes", "paper:logic", "cite"),
    # collaboration and affiliation side information
    ("ada", "grace", "collaborates"),
    ("grace", "ada", "collaborates"),
    ("ada", "org:analytical", "affiliated"),
    ("org:analytical", "topic:databases", "funds"),
]

MAX_HOPS = 4


def build_knowledge_graph():
    builder = GraphBuilder()
    for head, tail, relation in FACTS:
        builder.add_edge(head, tail, label=relation)
    return builder.build()


def relation_sequence(graph, path):
    return tuple(graph.edge_label(u, v, default="?") for u, v in zip(path, path[1:]))


def main() -> None:
    graph = build_knowledge_graph()
    print(f"knowledge graph: {graph.num_vertices} entities, {graph.num_edges} facts\n")

    with Database(graph) as db:
        # 1. Every path feature between ada and topic:databases.
        base = Q("ada", "topic:databases", MAX_HOPS)
        result = db.query(base, external=True).result()
        print(f"1. {result.count} paths connect 'ada' and 'topic:databases' "
              f"within {MAX_HOPS} hops")
        pattern_counts = Counter(relation_sequence(graph, p) for p in result.paths)
        for pattern, count in pattern_counts.most_common():
            print(f"   {count}x  {' -> '.join(pattern)}")

        # 2. Only the write -> mention evidence pattern (constrained specs
        #    run on the inline backend — constraints are process-local).
        automaton = SequenceAutomaton.from_label_sequence(["write", "mention"])
        constraint = AutomatonConstraint(graph, automaton)
        constrained = db.query(base.where(constraint), external=True).result()
        print(f"\n2. {constrained.count} paths follow the required pattern write -> mention")
        for path in constrained.paths:
            print("   " + " -> ".join(str(graph.to_external(v)) for v in path))

        # 3. Path-count features for candidate (author, topic) pairs — one
        #    batch per hop budget (a batch shares its run options).
        candidates = [
            ("ada", "topic:databases"),
            ("ada", "topic:optimization"),
            ("grace", "topic:databases"),
            ("grace", "topic:computability"),
            ("alan", "topic:databases"),
        ]
        counts_by_k = {
            k: db.batch(
                [(author, topic, k) for author, topic in candidates],
                external=True,
                store_paths=False,
            ).counts()
            for k in (3, 4)
        }
        print("\n3. path-count features for candidate relations (k = 3 and 4)")
        print(f"   {'author':8s} {'topic':22s} {'#paths k=3':>10s} {'#paths k=4':>10s}")
        for row, (author, topic) in enumerate(candidates):
            print(f"   {author:8s} {topic:22s} "
                  f"{counts_by_k[3][row]:>10d} {counts_by_k[4][row]:>10d}")


if __name__ == "__main__":
    main()
