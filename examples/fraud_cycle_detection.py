"""E-commerce merchant fraud detection (motivating application 2 of the paper).

Fake-transaction rings show up as short cycles in the transaction graph:
a seller routes money through intermediate accounts back to itself to fake
sales volume.  Following the paper (and [Qiu et al., VLDB'18]), every newly
arriving edge e(v, v') triggers the hop-constrained query q(v', v, k - 1) —
its results are exactly the cycles of length at most k that the new
transaction closes.

The script simulates a stream of transactions over a synthetic marketplace,
replays them against a :class:`~repro.graph.dynamic.DynamicGraph`, and
reports every cycle ring it finds in real time, together with per-update
latencies.

Run with:

    python examples/fraud_cycle_detection.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Database, DynamicGraph, Q
from repro.graph.generators import power_law_graph

#: Hop constraint on cycle length; the paper's application uses k = 6 because
#: longer cycles create too many false alarms.
CYCLE_HOP_LIMIT = 6

#: Number of streamed transactions to replay.
STREAM_LENGTH = 60


def simulate_marketplace(seed: int = 7):
    """A synthetic marketplace: users as vertices, past transactions as edges."""
    return power_law_graph(400, 4.0, exponent=2.1, seed=seed)


def build_transaction_stream(graph, *, seed: int = 11, length: int = STREAM_LENGTH):
    """New transactions to replay: a mix of random pairs and ring-closing edges."""
    rng = np.random.default_rng(seed)
    stream = []
    vertices = graph.num_vertices
    for _ in range(length):
        buyer = int(rng.integers(vertices))
        seller = int(rng.integers(vertices))
        if buyer != seller:
            stream.append((buyer, seller))
    # Inject a deliberate fake-sales ring so the example always finds one.
    ring = [3, 57, 121, 3]
    stream.extend((ring[i], ring[i + 1]) for i in range(len(ring) - 1))
    return stream


def main() -> None:
    base_graph = simulate_marketplace()
    stream = build_transaction_stream(base_graph)
    dynamic = DynamicGraph.from_graph(base_graph)

    print(f"marketplace: {base_graph.num_vertices} users, {base_graph.num_edges} transactions")
    print(f"replaying {len(stream)} new transactions, cycle limit k={CYCLE_HOP_LIMIT}\n")

    alerts = 0
    latencies_ms = []
    for buyer, seller in stream:
        inserted = dynamic.add_edge(buyer, seller)
        if not inserted:
            continue
        snapshot = dynamic.snapshot()
        # Cycles through the new edge (buyer -> seller) are paths from the
        # seller back to the buyer with at most k - 1 hops.
        spec = Q(seller, buyer, CYCLE_HOP_LIMIT - 1).deadline(1.0)
        started = time.perf_counter()
        with Database(snapshot) as db:
            result = db.query(spec, external=True).result()
        latencies_ms.append(1e3 * (time.perf_counter() - started))
        if result.count:
            alerts += 1
            shortest = min(result.paths, key=len)
            cycle = (buyer, *(snapshot.to_external(v) for v in shortest))
            print(
                f"ALERT transaction {buyer}->{seller}: closes {result.count} cycle(s); "
                f"shortest ring: {' -> '.join(str(v) for v in cycle)}"
            )

    latencies = np.asarray(latencies_ms)
    print(f"\nprocessed {len(latencies)} updates, {alerts} raised an alert")
    print(f"per-update detection latency: mean {latencies.mean():.2f} ms, "
          f"p99 {np.percentile(latencies, 99):.2f} ms, max {latencies.max():.2f} ms")


if __name__ == "__main__":
    main()
