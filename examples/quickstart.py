"""Quickstart: enumerate hop-constrained s-t paths with PathEnum.

Builds a small directed graph (the running example of the paper, Figure 1),
runs the query q(s, t, 4) through the public :class:`repro.Database` façade
and with each of the engine's building blocks, and prints the paths
together with the statistics the engine collects along the way.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, GraphBuilder, Q, Query
from repro.core import IdxDfs, IdxJoin, LightWeightIndex


def build_example_graph():
    """The paper's Figure 1 graph, with readable string vertex ids."""
    builder = GraphBuilder()
    builder.add_edges(
        [
            ("s", "v0"), ("s", "v1"), ("s", "v3"),
            ("v0", "v1"), ("v0", "v6"), ("v0", "t"),
            ("v1", "v2"), ("v1", "v3"),
            ("v2", "v0"), ("v2", "t"),
            ("v3", "v4"), ("v4", "v5"),
            ("v5", "v2"), ("v5", "t"), ("v5", "v7"),
            ("v6", "v0"), ("v7", "v3"),
        ]
    )
    return builder.build()


def main() -> None:
    graph = build_example_graph()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # --- the Database façade ---------------------------------------------
    # The same call runs unchanged on a thread pool
    # (``Database(graph, backend="threads")``), on worker processes, or
    # against a running ``repro serve`` (``Database("host:port")``).
    with Database(graph) as db:
        result = db.query(Q("s", "t", 4), external=True).result()
    paths = [graph.translate_path(p) for p in result.paths]
    print(f"\nq(s, t, 4) has {len(paths)} hop-constrained paths:")
    for path in sorted(paths, key=len):
        print("   " + " -> ".join(path))

    # --- execution statistics --------------------------------------------
    stats = result.stats
    query = Query.from_external(graph, "s", "t", 4)
    print("\nPathEnum execution details")
    print(f"   plan chosen:            {stats.plan}")
    print(f"   index vertices/edges:   {stats.index_vertices} / {stats.index_edges}")
    print(f"   preliminary estimate:   {stats.preliminary_estimate:.1f}")
    print(f"   edges accessed:         {stats.edges_accessed}")
    print(f"   invalid partials:       {stats.invalid_partial_results}")
    print(f"   query time:             {result.query_millis:.3f} ms")

    # --- the individual building blocks ----------------------------------
    index = LightWeightIndex.build(graph, query)
    v0 = graph.to_internal("v0")
    neighbors = [graph.to_external(v) for v in index.neighbors_within(v0, 2)]
    print("\nlight-weight index lookups")
    print(f"   I(2) candidates:        "
          f"{sorted(graph.to_external(v) for v in index.members(2))}")
    print(f"   I_t(v0, 2):             {neighbors}")

    for algorithm in (IdxDfs(), IdxJoin()):
        fixed = algorithm.run(graph, query)
        print(f"   {algorithm.name:8s} found {fixed.count} paths "
              f"in {fixed.query_millis:.3f} ms")


if __name__ == "__main__":
    main()
